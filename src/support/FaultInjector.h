//===- support/FaultInjector.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault injector for the chaos test suite. It is
/// compiled in unconditionally -- the disarmed fast path is a single relaxed
/// atomic load, cheap enough for the Rational hot loop -- and does nothing
/// unless a test arms it.
///
/// Injection points live at the four spots where real faults were observed
/// or are plausible under production load:
///
///   * RationalOp       -- every checked Rational multiply/add,
///   * DifferenceExpand -- each product-state expansion of the difference,
///   * NcsbSuccessor    -- each NCSB successor computation,
///   * ProverEntry      -- entry of the lasso and recurrence provers,
///   * ModularExpand    -- each tuple expansion of the modular complement,
///   * SandboxEntry     -- entry of a sandboxed termcheckd worker process,
///   * EmptinessStep    -- each state entered by the Couvreur emptiness
///                         engine's SCC search.
///
/// All sites but SandboxEntry throw through hit(). SandboxEntry is a HARD
/// fault site: the sandbox worker consumes its plan via consumeHard() and
/// turns the flavor into a real process death (raise(SIGSEGV), abort(), an
/// allocation bomb), which only the process-isolation layer can contain.
/// The armed state is plain process memory, so a forked worker inherits
/// the plan and its hit counters at fork time -- each worker replays the
/// plan independently, which is what the sandbox chaos flavor relies on.
///
/// Arming takes a single seed. The seed deterministically derives, per
/// site, whether the site is active this run, the hit index at which it
/// fires, and which fault it raises (an EngineError of some kind, a foreign
/// std::runtime_error, or std::bad_alloc). Each armed site fires exactly
/// once -- at hit N and never again -- so a contained fault cannot re-fire
/// forever and starve the run; determinism across runs of the same seed is
/// what makes chaos failures reproducible.
///
/// Hit counting is atomic, so the injector is safe under the portfolio's
/// worker threads; which thread absorbs the fault depends on scheduling,
/// but the chaos suite's assertions (no crash, no hang, verdicts only
/// weaken) are schedule-independent.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_FAULTINJECTOR_H
#define TERMCHECK_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>

namespace termcheck {

/// The instrumented sites. Keep NumSites last.
enum class FaultSite : uint8_t {
  RationalOp,
  DifferenceExpand,
  NcsbSuccessor,
  ProverEntry,
  ModularExpand,
  SandboxEntry,
  EmptinessStep,
  NumSites,
};

/// \returns a stable name for the site (diagnostics, statistics).
const char *faultSiteName(FaultSite S);

/// What an armed site throws when it fires.
enum class FaultFlavor : uint8_t {
  Overflow,   ///< EngineError(ArithmeticOverflow)
  Exhausted,  ///< EngineError(ResourceExhausted)
  Invariant,  ///< EngineError(InternalInvariant)
  Foreign,    ///< std::runtime_error (models a buggy third-party throw)
  BadAlloc,   ///< std::bad_alloc (models memory pressure)
};

/// Process-wide deterministic fault injector. All members are static: the
/// instrumented sites must be reachable from a no-argument call, and tests
/// serialize arm()/disarm() around each run.
class FaultInjector {
public:
  /// Arms the injector with \p Seed. Derives the per-site plan (active?,
  /// trigger hit, flavor) and zeroes the hit counters. At least one site is
  /// always active. Not thread-safe against concurrently running analysis.
  static void arm(uint64_t Seed);

  /// Disarms and zeroes everything; subsequent hits are free no-ops.
  static void disarm();

  static bool armed() {
    return Armed.load(std::memory_order_relaxed);
  }

  /// Number of faults fired since the last arm().
  static uint64_t firedCount() {
    return Fired.load(std::memory_order_relaxed);
  }

  /// The instrumented-site hook. Disarmed: one relaxed load. Armed: bumps
  /// the site's hit counter and throws the planned fault when the counter
  /// reaches the planned trigger (exactly once per site per arm()).
  static void hit(FaultSite S) {
    if (!Armed.load(std::memory_order_relaxed))
      return;
    hitSlow(S);
  }

  /// The non-throwing twin of hit() for hard-fault sites: bumps the hit
  /// counter and, when this hit is the planned trigger, stores the planned
  /// flavor into \p F and returns true (exactly once per site per arm()).
  /// The caller executes the fault itself -- the sandbox worker maps the
  /// flavor onto a real crash/abort/allocation bomb.
  static bool consumeHard(FaultSite S, FaultFlavor &F);

  /// Introspection for determinism tests: the planned one-based trigger hit
  /// of \p S, or 0 when the site is inactive under the current plan.
  static uint64_t plannedTrigger(FaultSite S);
  static FaultFlavor plannedFlavor(FaultSite S);

private:
  static void hitSlow(FaultSite S);

  static std::atomic<bool> Armed;
  static std::atomic<uint64_t> Fired;
};

} // namespace termcheck

#endif // TERMCHECK_SUPPORT_FAULTINJECTOR_H
