//===- support/Trace.h - Typed trace events and RAII spans ----*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event side of the observability layer: the refinement loop, the
/// portfolio runner, and the recurrence prover emit *typed* trace events
/// (iteration sampled, generalization stage reached, subtraction outcome,
/// CEGIS round, entrant spawned/finished/cancelled, ...) into a Trace
/// handle that forwards them to a pluggable sink.
///
/// Cost model: tracing must be free when disabled. Every producer holds a
/// `Trace *` that is null by default, and every emit site is guarded by
/// that null check *before any event payload is built* -- no strings are
/// formatted, no fields are allocated, no clock is read on the disabled
/// path. When enabled, the Trace stamps a monotonic timestamp relative to
/// its own epoch and forwards the event under a mutex, so one sink can be
/// shared by all racing portfolio workers.
///
/// Two sinks are provided: RecordingSink (in-memory, for tests and for
/// counting events into the run report) and JsonlSink (one JSON object
/// per line, the `termcheck --trace <file>` stream).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_TRACE_H
#define TERMCHECK_SUPPORT_TRACE_H

#include "support/Timer.h"

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace termcheck {

/// Every kind of event the engine emits. Adding a kind is an additive,
/// report-schema-versioned change (see DESIGN.md section 11).
enum class TraceEventKind : uint8_t {
  SpanBegin,        ///< an RAII span opened (field: name)
  SpanEnd,          ///< an RAII span closed (fields: name, seconds)
  LassoSampled,     ///< refinement loop sampled a lasso word
  LassoProved,      ///< lasso prover returned (field: status)
  StageAttempt,     ///< one generalization stage tried (stage, accepted)
  ModuleBuilt,      ///< the chosen module (stage 0-4, kind, states)
  Subtraction,      ///< one difference construction finished or degraded
  FaultContained,   ///< a recoverable EngineError was absorbed
  CegisRound,       ///< one recurrence-prover closure refinement round
  NontermAttempt,   ///< the recurrence prover started on a lasso
  NontermResult,    ///< ... and finished (field: outcome)
  EntrantSpawn,     ///< a portfolio entrant started running
  EntrantResult,    ///< ... finished with a verdict
  EntrantFault,     ///< ... was quarantined (field: kind)
  RaceDecided,      ///< the shared token was cancelled by a winner
  VerdictReached,   ///< a run's final verdict
  WorkerSpawn,      ///< a sandboxed termcheckd worker forked (job, pid)
  WorkerExit,       ///< ... exited; fields carry the classification
  WorkerKill,       ///< the supervisor signalled a worker (signal)
  WorkerRetry,      ///< a crashed/OOM-killed attempt is being retried
  WorkerQuarantine, ///< a program shape entered the crash-loop quarantine
};

/// Short stable name of an event kind (the `"event"` field of the JSONL
/// stream and the keys tests match on).
const char *traceEventKindName(TraceEventKind K);

/// One typed event: a kind, a timestamp, and a flat list of fields. Field
/// keys are string literals at every emit site, so events carry no key
/// allocations.
struct TraceEvent {
  using FieldValue = std::variant<int64_t, double, std::string, bool>;

  TraceEventKind Kind;
  /// Seconds since the owning Trace's epoch (stamped by Trace::emit).
  double AtSeconds = 0;
  std::vector<std::pair<const char *, FieldValue>> Fields;

  explicit TraceEvent(TraceEventKind K) : Kind(K) {}

  TraceEvent &with(const char *Key, int64_t V) {
    Fields.emplace_back(Key, FieldValue(V));
    return *this;
  }
  TraceEvent &with(const char *Key, uint64_t V) {
    return with(Key, static_cast<int64_t>(V));
  }
  TraceEvent &with(const char *Key, int V) {
    return with(Key, static_cast<int64_t>(V));
  }
  TraceEvent &with(const char *Key, double V) {
    Fields.emplace_back(Key, FieldValue(V));
    return *this;
  }
  TraceEvent &with(const char *Key, bool V) {
    Fields.emplace_back(Key, FieldValue(V));
    return *this;
  }
  TraceEvent &with(const char *Key, std::string V) {
    Fields.emplace_back(Key, FieldValue(std::move(V)));
    return *this;
  }
  TraceEvent &with(const char *Key, const char *V) {
    return with(Key, std::string(V));
  }

  /// \returns the field \p Key or nullptr (test helper).
  const FieldValue *find(const char *Key) const;
};

/// Where events go. Implementations need no internal locking: Trace
/// serializes consume() calls under its own mutex.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void consume(const TraceEvent &E) = 0;
};

/// The handle producers hold (always by plain pointer; null = disabled).
/// Thread-safe: portfolio workers share one Trace.
class Trace {
public:
  explicit Trace(TraceSink &Sink) : Sink(Sink) {}

  /// Stamps \p E against this trace's epoch and forwards it.
  void emit(TraceEvent E) {
    E.AtSeconds = Epoch.seconds();
    std::lock_guard<std::mutex> Lock(M);
    ++Count;
    Sink.consume(E);
  }

  /// Events forwarded so far (the run report's `trace_events` count).
  uint64_t eventCount() const {
    std::lock_guard<std::mutex> Lock(M);
    return Count;
  }

private:
  TraceSink &Sink;
  Timer Epoch;
  mutable std::mutex M;
  uint64_t Count = 0;
};

/// RAII span: emits SpanBegin on construction and SpanEnd (with the
/// measured duration) on scope exit. Null-trace construction is free.
class TraceSpan {
public:
  TraceSpan(Trace *T, const char *Name) : T(T), Name(Name) {
    if (T)
      T->emit(TraceEvent(TraceEventKind::SpanBegin).with("name", Name));
  }
  ~TraceSpan() {
    if (T)
      T->emit(TraceEvent(TraceEventKind::SpanEnd)
                  .with("name", Name)
                  .with("seconds", Watch.seconds()));
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  Trace *T;
  const char *Name;
  Timer Watch;
};

/// In-memory sink for tests and report event counting.
class RecordingSink : public TraceSink {
public:
  void consume(const TraceEvent &E) override { Events.push_back(E); }

  const std::vector<TraceEvent> &events() const { return Events; }

  /// \returns how many recorded events have kind \p K.
  size_t count(TraceEventKind K) const {
    size_t N = 0;
    for (const TraceEvent &E : Events)
      if (E.Kind == K)
        ++N;
    return N;
  }

private:
  std::vector<TraceEvent> Events;
};

/// Streams each event as one compact JSON object per line:
///   {"at_s":0.000123,"event":"subtraction","product_states":42,...}
/// Timestamps and double fields use the deterministic fixed-precision
/// formatter of support/Json.h.
class JsonlSink : public TraceSink {
public:
  explicit JsonlSink(std::ostream &OS) : OS(OS) {}
  void consume(const TraceEvent &E) override;

private:
  std::ostream &OS;
};

} // namespace termcheck

#endif // TERMCHECK_SUPPORT_TRACE_H
