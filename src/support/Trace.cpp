//===- support/Trace.cpp - Typed trace events and RAII spans --------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

using namespace termcheck;

const char *termcheck::traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::SpanBegin:
    return "span_begin";
  case TraceEventKind::SpanEnd:
    return "span_end";
  case TraceEventKind::LassoSampled:
    return "lasso_sampled";
  case TraceEventKind::LassoProved:
    return "lasso_proved";
  case TraceEventKind::StageAttempt:
    return "stage_attempt";
  case TraceEventKind::ModuleBuilt:
    return "module_built";
  case TraceEventKind::Subtraction:
    return "subtraction";
  case TraceEventKind::FaultContained:
    return "fault_contained";
  case TraceEventKind::CegisRound:
    return "cegis_round";
  case TraceEventKind::NontermAttempt:
    return "nonterm_attempt";
  case TraceEventKind::NontermResult:
    return "nonterm_result";
  case TraceEventKind::EntrantSpawn:
    return "entrant_spawn";
  case TraceEventKind::EntrantResult:
    return "entrant_result";
  case TraceEventKind::EntrantFault:
    return "entrant_fault";
  case TraceEventKind::RaceDecided:
    return "race_decided";
  case TraceEventKind::VerdictReached:
    return "verdict_reached";
  case TraceEventKind::WorkerSpawn:
    return "worker_spawn";
  case TraceEventKind::WorkerExit:
    return "worker_exit";
  case TraceEventKind::WorkerKill:
    return "worker_kill";
  case TraceEventKind::WorkerRetry:
    return "worker_retry";
  case TraceEventKind::WorkerQuarantine:
    return "worker_quarantine";
  }
  return "?";
}

const TraceEvent::FieldValue *TraceEvent::find(const char *Key) const {
  for (const auto &[K, V] : Fields)
    if (std::string_view(K) == Key)
      return &V;
  return nullptr;
}

void JsonlSink::consume(const TraceEvent &E) {
  json::Writer W(OS, /*Pretty=*/false);
  W.beginObject();
  W.field("at_s", E.AtSeconds);
  W.field("event", traceEventKindName(E.Kind));
  for (const auto &[Key, V] : E.Fields) {
    W.key(Key);
    std::visit([&W](const auto &X) { W.value(X); }, V);
  }
  W.endObject();
  OS << "\n";
}
