//===- support/Json.h - Minimal JSON writer and parser --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON layer under the observability features (run reports, trace
/// streams, bench snapshots):
///
///  * `json::Writer` -- a streaming writer with correct string escaping
///    and *deterministic* number formatting: doubles are always printed
///    with fixed six-decimal precision (never scientific notation), so a
///    report produced twice from the same deterministic run is identical
///    byte for byte. `formatFixed` is the one double formatter shared by
///    the writer and Statistics::print, keeping the text and JSON dumps
///    in lockstep.
///
///  * `json::Value` / `json::parse` -- a small recursive-descent parser,
///    enough to validate emitted reports in tests and tools (numbers are
///    held as doubles; the reports only carry values far below 2^53).
///
/// The parser also fronts the `termcheckd` network protocol, so it is
/// hardened for untrusted input: every parse runs under ParseLimits (a
/// recursion-depth cap bounding stack growth and an input-size cap
/// bounding allocation), and `parseOrThrow` maps violations onto the
/// structured EngineError taxonomy (ParseFailure for malformed text,
/// ResourceExhausted for a breached limit) instead of a stack overflow or
/// an unbounded std::bad_alloc.
///
/// Neither side aims at full generality (no streaming parse, no \uXXXX
/// synthesis beyond control characters); both aim at being obviously
/// correct for the report schema.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_JSON_H
#define TERMCHECK_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace termcheck {
namespace json {

/// Formats \p V with fixed \p Decimals decimal places, never scientific
/// notation. Non-finite values (which valid reports never contain, but a
/// fault path might produce) are clamped to zero rather than emitting
/// text JSON parsers reject.
std::string formatFixed(double V, int Decimals = 6);

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes, and all control characters below 0x20; everything else is
/// passed through as UTF-8).
std::string escape(const std::string &S);

/// A streaming JSON writer. The caller drives structure explicitly
/// (begin/end object/array, key, value); the writer tracks comma placement
/// and, in pretty mode, indentation. Misuse (a value with a dangling key,
/// unbalanced ends) is a programming error caught by assertions.
class Writer {
public:
  explicit Writer(std::ostream &OS, bool Pretty = true)
      : OS(OS), Pretty(Pretty) {}

  void beginObject();
  void endObject();
  void beginArray();
  void endArray();

  /// Emits an object key; the next emission must be its value.
  void key(const std::string &K);

  void value(const std::string &S);
  void value(const char *S);
  void value(int64_t V);
  void value(uint64_t V);
  void value(int V) { value(static_cast<int64_t>(V)); }
  void value(double V);
  void value(bool V);
  void null();

  /// Emits \p Json verbatim in value position (comma/key bookkeeping still
  /// applies). The caller vouches that the bytes are one complete JSON
  /// value; the writer does not re-validate them. The termcheckd sandbox
  /// path uses this to embed a worker-serialized report object into a
  /// result line without a parse/re-serialize round trip.
  void rawValue(std::string_view Json);

  /// key + value in one call.
  template <typename T> void field(const std::string &K, T V) {
    key(K);
    value(V);
  }
  void fieldNull(const std::string &K) {
    key(K);
    null();
  }

  /// Terminates the document with a trailing newline (optional; call once
  /// after the top-level value is closed).
  void finish() { OS << "\n"; }

private:
  std::ostream &OS;
  bool Pretty;
  struct Ctx {
    bool IsObject;
    bool First;
  };
  std::vector<Ctx> Stack;
  bool PendingKey = false;

  void indent(size_t Depth);
  /// Comma/newline bookkeeping before a value or container opens.
  void valuePrefix();
};

/// A parsed JSON value (see file comment for the supported subset).
struct Value {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::map<std::string, Value> Obj;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; \returns nullptr when absent or not an object.
  const Value *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }
};

/// Caps protecting the parser against untrusted input. Both caps are
/// always enforced; the defaults are far above anything the report and
/// protocol schemas produce while still bounding stack and heap growth.
struct ParseLimits {
  /// Maximum container nesting (objects + arrays). Each level costs one
  /// recursive parseValue frame, so this bounds stack use. 0 = default.
  size_t MaxDepth = 256;
  /// Maximum input size in bytes; 0 = unlimited. An oversized document is
  /// rejected before any of it is parsed or copied.
  size_t MaxBytes = 0;
};

/// Parses one JSON document under \p Limits. \returns false on malformed
/// input or a breached limit (with a position-bearing message in \p Error
/// when provided); trailing garbage after the top-level value is an error.
bool parse(std::string_view S, Value &Out, const ParseLimits &Limits,
           std::string *Error = nullptr);

/// Parses with the default limits (depth 256, unbounded size).
bool parse(std::string_view S, Value &Out, std::string *Error = nullptr);

/// Parses one untrusted JSON document, mapping failures onto the engine
/// error taxonomy: a breached ParseLimits cap throws
/// EngineError(ResourceExhausted), malformed text throws
/// EngineError(ParseFailure). The termcheckd protocol front end uses this
/// so a hostile payload surfaces as a structured, containable fault.
Value parseOrThrow(std::string_view S, const ParseLimits &Limits = {});

} // namespace json
} // namespace termcheck

#endif // TERMCHECK_SUPPORT_JSON_H
