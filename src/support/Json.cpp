//===- support/Json.cpp - Minimal JSON writer and parser ------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/Error.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace termcheck;
using namespace termcheck::json;

std::string termcheck::json::formatFixed(double V, int Decimals) {
  if (!std::isfinite(V))
    V = 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  // "-0.000000" and "0.000000" are the same report; normalize the sign so
  // a value that rounds to zero cannot flip bytes between runs.
  if (Buf[0] == '-') {
    bool AllZero = true;
    for (const char *P = Buf + 1; *P; ++P)
      if (*P != '0' && *P != '.')
        AllZero = false;
    if (AllZero)
      return Buf + 1;
  }
  return Buf;
}

std::string termcheck::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}

void Writer::indent(size_t Depth) {
  for (size_t I = 0; I < Depth; ++I)
    OS << "  ";
}

void Writer::valuePrefix() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (Stack.empty())
    return;
  assert(!Stack.back().IsObject &&
         "object members need a key before the value");
  if (!Stack.back().First)
    OS << ',';
  Stack.back().First = false;
  if (Pretty) {
    OS << '\n';
    indent(Stack.size());
  }
}

void Writer::key(const std::string &K) {
  assert(!Stack.empty() && Stack.back().IsObject && !PendingKey &&
         "key() only inside an object, never twice in a row");
  if (!Stack.back().First)
    OS << ',';
  Stack.back().First = false;
  if (Pretty) {
    OS << '\n';
    indent(Stack.size());
  }
  OS << '"' << escape(K) << "\":";
  if (Pretty)
    OS << ' ';
  PendingKey = true;
}

void Writer::beginObject() {
  valuePrefix();
  OS << '{';
  Stack.push_back({true, true});
}

void Writer::endObject() {
  assert(!Stack.empty() && Stack.back().IsObject && !PendingKey);
  bool WasEmpty = Stack.back().First;
  Stack.pop_back();
  if (Pretty && !WasEmpty) {
    OS << '\n';
    indent(Stack.size());
  }
  OS << '}';
}

void Writer::beginArray() {
  valuePrefix();
  OS << '[';
  Stack.push_back({false, true});
}

void Writer::endArray() {
  assert(!Stack.empty() && !Stack.back().IsObject && !PendingKey);
  bool WasEmpty = Stack.back().First;
  Stack.pop_back();
  if (Pretty && !WasEmpty) {
    OS << '\n';
    indent(Stack.size());
  }
  OS << ']';
}

void Writer::value(const std::string &S) {
  valuePrefix();
  OS << '"' << escape(S) << '"';
}

void Writer::value(const char *S) { value(std::string(S)); }

void Writer::value(int64_t V) {
  valuePrefix();
  OS << V;
}

void Writer::value(uint64_t V) {
  valuePrefix();
  OS << V;
}

void Writer::value(double V) {
  valuePrefix();
  OS << formatFixed(V);
}

void Writer::value(bool V) {
  valuePrefix();
  OS << (V ? "true" : "false");
}

void Writer::null() {
  valuePrefix();
  OS << "null";
}

void Writer::rawValue(std::string_view Json) {
  valuePrefix();
  OS << Json;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(std::string_view S, const ParseLimits &Limits, std::string *Error)
      : S(S), Limits(Limits), Error(Error) {
    if (this->Limits.MaxDepth == 0)
      this->Limits.MaxDepth = ParseLimits().MaxDepth;
  }

  bool run(Value &Out) {
    if (Limits.MaxBytes != 0 && S.size() > Limits.MaxBytes) {
      LimitBreached = true;
      return fail("input of " + std::to_string(S.size()) +
                  " bytes exceeds the " + std::to_string(Limits.MaxBytes) +
                  "-byte limit");
    }
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != S.size())
      return fail("trailing characters after the top-level value");
    return true;
  }

  /// True when run() failed because a ParseLimits cap was breached rather
  /// than because the text was malformed.
  bool limitBreached() const { return LimitBreached; }

private:
  std::string_view S;
  ParseLimits Limits;
  std::string *Error;
  size_t Pos = 0;
  size_t Depth = 0;
  bool LimitBreached = false;

  bool fail(const std::string &Msg) {
    if (Error)
      *Error = "at offset " + std::to_string(Pos) + ": " + Msg;
    return false;
  }

  /// RAII nesting meter: parseObject/parseArray enter one level each, so
  /// the cap bounds the recursion depth of parseValue.
  class DepthScope {
  public:
    explicit DepthScope(Parser &P) : P(P) { ++P.Depth; }
    ~DepthScope() { --P.Depth; }

  private:
    Parser &P;
  };

  bool enterContainer() {
    if (Depth >= Limits.MaxDepth) {
      LimitBreached = true;
      return fail("nesting deeper than the " +
                  std::to_string(Limits.MaxDepth) + "-level limit");
    }
    return true;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view L) {
    if (S.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }

  bool parseValue(Value &Out) {
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    switch (C) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = Value::Kind::String;
      return parseString(Out.Str);
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out.K = Value::Kind::Null;
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out) {
    if (!enterContainer())
      return false;
    DepthScope Scope(*this);
    Out.K = Value::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipWs();
      Value V;
      if (!parseValue(V))
        return false;
      Out.Obj.emplace(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= S.size())
        return fail("unterminated object");
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out) {
    if (!enterContainer())
      return false;
    DepthScope Scope(*this);
    Out.K = Value::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      Value V;
      if (!parseValue(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (Pos >= S.size())
        return fail("unterminated array");
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= S.size())
          return fail("dangling escape");
        char E = S[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"':
          Out.push_back('"');
          break;
        case '\\':
          Out.push_back('\\');
          break;
        case '/':
          Out.push_back('/');
          break;
        case 'b':
          Out.push_back('\b');
          break;
        case 'f':
          Out.push_back('\f');
          break;
        case 'n':
          Out.push_back('\n');
          break;
        case 'r':
          Out.push_back('\r');
          break;
        case 't':
          Out.push_back('\t');
          break;
        case 'u': {
          if (Pos + 4 > S.size())
            return fail("truncated \\u escape");
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos + I];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          Pos += 4;
          // The writer only synthesizes \u00XX for control characters;
          // decode the BMP point as UTF-8 so round-trips are exact.
          if (V < 0x80) {
            Out.push_back(static_cast<char>(V));
          } else if (V < 0x800) {
            Out.push_back(static_cast<char>(0xC0 | (V >> 6)));
            Out.push_back(static_cast<char>(0x80 | (V & 0x3F)));
          } else {
            Out.push_back(static_cast<char>(0xE0 | (V >> 12)));
            Out.push_back(static_cast<char>(0x80 | ((V >> 6) & 0x3F)));
            Out.push_back(static_cast<char>(0x80 | (V & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape character");
        }
        continue;
      }
      Out.push_back(C);
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Text(S.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Text.c_str(), &End);
    if (End == Text.c_str() || *End != '\0') {
      Pos = Start;
      return fail("malformed number");
    }
    Out.K = Value::Kind::Number;
    Out.Num = V;
    return true;
  }
};

} // namespace

bool termcheck::json::parse(std::string_view S, Value &Out,
                            const ParseLimits &Limits, std::string *Error) {
  return Parser(S, Limits, Error).run(Out);
}

bool termcheck::json::parse(std::string_view S, Value &Out,
                            std::string *Error) {
  return parse(S, Out, ParseLimits(), Error);
}

json::Value termcheck::json::parseOrThrow(std::string_view S,
                                          const ParseLimits &Limits) {
  Value Out;
  std::string Error;
  Parser P(S, Limits, &Error);
  if (!P.run(Out))
    throw EngineError(P.limitBreached() ? ErrorKind::ResourceExhausted
                                        : ErrorKind::ParseFailure,
                      "json: " + Error);
  return Out;
}
