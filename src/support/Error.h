//===- support/Error.h - Structured engine errors -------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine's structured error taxonomy. Every recoverable failure inside
/// the analysis pipeline -- an overflowing exact-arithmetic operation, an
/// exploding complement, a malformed input -- is reported as an EngineError
/// carrying one of four kinds, instead of an assert that vanishes under
/// NDEBUG or a bare std::runtime_error nobody can dispatch on.
///
/// The containment contract (DESIGN.md section 10): a thrown EngineError may
/// only ever *weaken* the analysis outcome. A stage that faults is skipped
/// in favor of the next stage; a subtraction that faults falls back to
/// word-only removal; an analyzer run that cannot contain a fault reports
/// UNKNOWN; a portfolio entrant whose worker faults is quarantined and the
/// race continues. No fault path may flip TERMINATING to NONTERMINATING or
/// vice versa, and none may escape to std::terminate.
///
/// ErrorOr<T> is the non-throwing half of the bridge: boundary code (the
/// portfolio's result slots, callers that must not unwind) captures a
/// throwing computation into a value-or-error without losing the taxonomy.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_ERROR_H
#define TERMCHECK_SUPPORT_ERROR_H

#include <exception>
#include <new>
#include <optional>
#include <string>
#include <utility>

namespace termcheck {

/// What failed. Kept deliberately small: callers dispatch on the kind (for
/// statistics and exit codes), the message is for humans.
enum class ErrorKind : uint8_t {
  /// Exact arithmetic left its representable range (Rational 128-bit
  /// numerator/denominator, lcm scaling, int64 narrowing).
  ArithmeticOverflow,
  /// A construction outgrew its state/memory/width budget (NCSB free-set
  /// explosion, product state cap, ResourceGuard trip).
  ResourceExhausted,
  /// Input could not be parsed into a program.
  ParseFailure,
  /// An internal invariant failed on a recoverable path (the non-recoverable
  /// ones stay asserts: they indicate bugs, not inputs).
  InternalInvariant,
};

/// \returns a stable lowercase name for the kind ("arithmetic_overflow",
/// ...), used as a statistics-counter suffix and in diagnostics.
inline const char *errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::ArithmeticOverflow:
    return "arithmetic_overflow";
  case ErrorKind::ResourceExhausted:
    return "resource_exhausted";
  case ErrorKind::ParseFailure:
    return "parse_failure";
  case ErrorKind::InternalInvariant:
    return "internal_invariant";
  }
  return "unknown";
}

/// A structured, recoverable engine failure.
class EngineError : public std::exception {
public:
  EngineError(ErrorKind K, std::string Message)
      : K(K), Message(std::move(Message)) {
    Rendered = std::string(errorKindName(K)) + ": " + this->Message;
  }

  ErrorKind kind() const noexcept { return K; }
  const std::string &message() const noexcept { return Message; }
  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  ErrorKind K;
  std::string Message;
  std::string Rendered;
};

/// A value of type \p T or the EngineError that prevented computing it.
/// Lightweight by design: no monadic combinators, just the bridge between
/// the throwing core and boundaries that must not unwind.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(EngineError E) : Err(std::move(E)) {}

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() { return *Value; }
  const T &value() const { return *Value; }
  T &operator*() { return *Value; }

  const EngineError &error() const { return *Err; }

  /// The value, or \p Fallback when this holds an error.
  T valueOr(T Fallback) const {
    return ok() ? *Value : std::move(Fallback);
  }

private:
  std::optional<T> Value;
  std::optional<EngineError> Err;
};

/// Runs \p Fn, capturing its result -- or any exception it throws -- into an
/// ErrorOr. Non-EngineError exceptions are folded into the taxonomy:
/// std::bad_alloc becomes ResourceExhausted, anything else an
/// InternalInvariant carrying what(). This is the standard way to call the
/// throwing core from code that must keep running (portfolio workers, the
/// chaos harness).
template <typename Fn>
auto errorOrOf(Fn &&F) -> ErrorOr<decltype(F())> {
  try {
    return ErrorOr<decltype(F())>(F());
  } catch (const EngineError &E) {
    return ErrorOr<decltype(F())>(E);
  } catch (const std::bad_alloc &) {
    return ErrorOr<decltype(F())>(
        EngineError(ErrorKind::ResourceExhausted, "allocation failed"));
  } catch (const std::exception &E) {
    return ErrorOr<decltype(F())>(
        EngineError(ErrorKind::InternalInvariant, E.what()));
  }
}

} // namespace termcheck

#endif // TERMCHECK_SUPPORT_ERROR_H
