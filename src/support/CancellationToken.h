//===- support/CancellationToken.h - Cooperative cancellation -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation flag shared between the portfolio driver and
/// the analyzer workers it races. The analysis loops never block on it;
/// they poll it at the same points the wall-clock budget is polled (the
/// refinement loop head, the difference engine's DFS, and the NCSB split
/// enumerations), so a losing configuration stuck deep inside a
/// subtraction still notices the winner within a bounded number of steps.
///
/// Cancellation is one-way and sticky: once cancel() is called the token
/// stays cancelled forever. Relaxed atomics suffice -- the token carries no
/// data, only a "stop soon" hint, and the portfolio joins its workers
/// before reading any of their results.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_CANCELLATIONTOKEN_H
#define TERMCHECK_SUPPORT_CANCELLATIONTOKEN_H

#include <atomic>

namespace termcheck {

/// A sticky, thread-safe "stop soon" flag.
class CancellationToken {
public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken &) = delete;
  CancellationToken &operator=(const CancellationToken &) = delete;

  /// Requests cancellation. Safe to call from any thread, any number of
  /// times.
  void cancel() noexcept { Flag.store(true, std::memory_order_relaxed); }

  /// \returns true once cancel() has been called.
  bool cancelled() const noexcept {
    return Flag.load(std::memory_order_relaxed);
  }

private:
  std::atomic<bool> Flag{false};
};

} // namespace termcheck

#endif // TERMCHECK_SUPPORT_CANCELLATIONTOKEN_H
