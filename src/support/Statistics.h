//===- support/Statistics.h - Named counters ------------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight bag of named counters and accumulating timers. The analysis
/// driver fills one of these per run; the benchmark harnesses aggregate them
/// into the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_STATISTICS_H
#define TERMCHECK_SUPPORT_STATISTICS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace termcheck {

/// Ordered map of counter name to value; ordered so dumps are deterministic.
class Statistics {
public:
  /// Adds \p Delta to counter \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Records \p Value into a max-tracking counter.
  void recordMax(const std::string &Name, int64_t Value) {
    int64_t &Slot = Counters[Name];
    if (Value > Slot)
      Slot = Value;
  }

  /// Adds \p Seconds to an accumulating timer counter.
  void addTime(const std::string &Name, double Seconds) {
    Times[Name] += Seconds;
  }

  /// \returns the value of counter \p Name, or zero when absent.
  int64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// \returns the accumulated seconds of timer \p Name, or zero when absent.
  double getTime(const std::string &Name) const {
    auto It = Times.find(Name);
    return It == Times.end() ? 0.0 : It->second;
  }

  /// Merges another statistics bag into this one (summing everything).
  void merge(const Statistics &Other) {
    for (const auto &[K, V] : Other.Counters)
      Counters[K] += V;
    for (const auto &[K, V] : Other.Times)
      Times[K] += V;
  }

  /// Pretty-prints all counters, one per line.
  void print(std::ostream &OS) const {
    for (const auto &[K, V] : Counters)
      OS << "  " << K << " = " << V << "\n";
    for (const auto &[K, V] : Times)
      OS << "  " << K << " = " << V << " s\n";
  }

  const std::map<std::string, int64_t> &counters() const { return Counters; }

private:
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Times;
};

} // namespace termcheck

#endif // TERMCHECK_SUPPORT_STATISTICS_H
