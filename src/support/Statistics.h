//===- support/Statistics.h - Named counters ------------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight bag of named counters. The analysis driver fills one of
/// these per run; the benchmark harnesses and the portfolio runner
/// aggregate them across runs.
///
/// Counters come in three kinds with distinct merge semantics:
///
///  * additive counters (add/get)        -- merge by summing,
///  * high-water marks (recordMax/getMax) -- merge by taking the maximum,
///  * accumulating timers (addTime/getTime) -- merge by summing seconds.
///
/// The kinds live in separate maps, so a merge of two runs is well-defined
/// per kind (a high-water mark is never accidentally summed). A Statistics
/// instance is a plain value type with no internal synchronization: each
/// analysis run owns its own bag, and concurrent aggregation (the parallel
/// portfolio) merges finished bags under the aggregator's own lock after
/// the producing thread has been joined or has published its result.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_SUPPORT_STATISTICS_H
#define TERMCHECK_SUPPORT_STATISTICS_H

#include "support/Json.h"

#include <cstdint>
#include <map>
#include <ostream>
#include <sstream>
#include <string>

namespace termcheck {

/// Ordered maps of counter name to value; ordered so dumps are
/// deterministic.
class Statistics {
public:
  /// Adds \p Delta to additive counter \p Name (creating it at zero).
  void add(const std::string &Name, int64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Records \p Value into the high-water mark \p Name.
  void recordMax(const std::string &Name, int64_t Value) {
    int64_t &Slot = Maxima[Name];
    if (Value > Slot)
      Slot = Value;
  }

  /// Adds \p Seconds to accumulating timer \p Name.
  void addTime(const std::string &Name, double Seconds) {
    Times[Name] += Seconds;
  }

  /// \returns the value of additive counter \p Name, or zero when absent.
  int64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// \returns the high-water mark \p Name, or zero when absent.
  int64_t getMax(const std::string &Name) const {
    auto It = Maxima.find(Name);
    return It == Maxima.end() ? 0 : It->second;
  }

  /// \returns the accumulated seconds of timer \p Name, or zero when absent.
  double getTime(const std::string &Name) const {
    auto It = Times.find(Name);
    return It == Times.end() ? 0.0 : It->second;
  }

  /// Merges another bag into this one, kind by kind: additive counters and
  /// timers are summed, high-water marks take the maximum.
  void merge(const Statistics &Other) {
    for (const auto &[K, V] : Other.Counters)
      Counters[K] += V;
    for (const auto &[K, V] : Other.Maxima)
      recordMax(K, V);
    for (const auto &[K, V] : Other.Times)
      Times[K] += V;
  }

  /// Merges \p Other with every counter name prefixed by \p Prefix (the
  /// portfolio uses this to namespace per-configuration statistics inside
  /// one combined dump). With \p IncludeTimes false, wall-clock timers are
  /// left out -- the portfolio's merged dump must stay byte-for-byte
  /// reproducible with Jobs == 1, and timers are the one nondeterministic
  /// kind (per-run timers stay available on each AnalysisResult).
  void mergePrefixed(const Statistics &Other, const std::string &Prefix,
                     bool IncludeTimes = true) {
    for (const auto &[K, V] : Other.Counters)
      Counters[Prefix + K] += V;
    for (const auto &[K, V] : Other.Maxima)
      recordMax(Prefix + K, V);
    if (IncludeTimes)
      for (const auto &[K, V] : Other.Times)
        Times[Prefix + K] += V;
  }

  /// \returns true when no counter of any kind has been touched.
  bool empty() const {
    return Counters.empty() && Maxima.empty() && Times.empty();
  }

  /// Pretty-prints all counters, one per line, in deterministic order:
  /// additive counters, then high-water marks, then timers. Timers use the
  /// same fixed-precision formatter as the JSON run report: the default
  /// ostream precision flips tiny values into scientific notation
  /// (1e-07), which would break the byte-for-byte determinism guards.
  void print(std::ostream &OS) const {
    for (const auto &[K, V] : Counters)
      OS << "  " << K << " = " << V << "\n";
    for (const auto &[K, V] : Maxima)
      OS << "  " << K << " = " << V << " (max)\n";
    for (const auto &[K, V] : Times)
      OS << "  " << K << " = " << json::formatFixed(V) << " s\n";
  }

  /// \returns the print() output as a string (determinism guards in tests
  /// compare these byte for byte).
  std::string str() const {
    std::ostringstream OS;
    print(OS);
    return OS.str();
  }

  const std::map<std::string, int64_t> &counters() const { return Counters; }
  const std::map<std::string, int64_t> &maxima() const { return Maxima; }
  const std::map<std::string, double> &times() const { return Times; }

private:
  std::map<std::string, int64_t> Counters;
  std::map<std::string, int64_t> Maxima;
  std::map<std::string, double> Times;
};

} // namespace termcheck

#endif // TERMCHECK_SUPPORT_STATISTICS_H
