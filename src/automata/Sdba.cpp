//===- automata/Sdba.cpp - Semideterministic BA toolkit -------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Sdba.h"

#include <cassert>
#include <deque>

using namespace termcheck;

SdbaSplit termcheck::classifySdba(const Buchi &A) {
  assert(A.numConditions() == 1 && "SDBA classification expects a plain BA");
  SdbaSplit Split;
  Split.InQ2.assign(A.numStates(), false);

  // Q2 = states reachable from some accepting state (inclusive).
  std::deque<State> Work;
  for (State S = 0; S < A.numStates(); ++S) {
    if (A.acceptMask(S) != 0) {
      Split.InQ2[S] = true;
      Work.push_back(S);
    }
  }
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
      if (!Split.InQ2[Arc.To]) {
        Split.InQ2[Arc.To] = true;
        Work.push_back(Arc.To);
      }
    }
  }

  // The Q2 part must be deterministic.
  for (State S = 0; S < A.numStates(); ++S) {
    if (!Split.InQ2[S])
      continue;
    std::vector<bool> Seen(A.numSymbols(), false);
    for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
      if (Seen[Arc.Sym])
        return Split; // IsSemideterministic stays false
      Seen[Arc.Sym] = true;
    }
  }
  Split.IsSemideterministic = true;
  return Split;
}

std::optional<Sdba> termcheck::prepareSdba(const Buchi &Input) {
  SdbaSplit Split = classifySdba(Input);
  if (!Split.IsSemideterministic)
    return std::nullopt;

  // Copy and normalize: every transition from Q1 into a non-accepting Q2
  // state q, and every non-accepting initial state inside Q2, is redirected
  // to an accepting twin of q with the same outgoing transitions
  // (Section 2). The twin adds only finitely many extra accepting visits
  // per run, so the language is unchanged.
  Buchi A(Input.numSymbols(), 1);
  A.addStates(Input.numStates());
  std::vector<bool> InQ2 = Split.InQ2;
  for (State S = 0; S < Input.numStates(); ++S)
    A.setAcceptMask(S, Input.acceptMask(S));

  std::vector<State> Twin(Input.numStates(), UINT32_MAX);
  auto TwinOf = [&](State Q) {
    if (Twin[Q] != UINT32_MAX)
      return Twin[Q];
    State T = A.addState();
    A.setAccepting(T);
    InQ2.push_back(true);
    Twin[Q] = T;
    return T;
  };

  // Transitions: Q1 -> non-accepting Q2 targets are redirected.
  for (State S = 0; S < Input.numStates(); ++S) {
    bool FromQ1 = !Split.InQ2[S];
    for (const Buchi::Arc &Arc : Input.arcsFrom(S)) {
      State To = Arc.To;
      if (FromQ1 && Split.InQ2[To] && Input.acceptMask(To) == 0)
        To = TwinOf(Arc.To);
      A.addTransition(S, Arc.Sym, To);
    }
  }
  // Initial states: non-accepting initial Q2 states become their twins.
  // This must run before the twin-copy pass so twins created here also get
  // their outgoing transitions.
  for (State S : Input.initials().elems()) {
    if (Split.InQ2[S] && Input.acceptMask(S) == 0)
      A.addInitial(TwinOf(S));
    else
      A.addInitial(S);
  }
  // Twins copy the outgoing transitions of their originals (which stay
  // deterministic, hence so do the twins).
  for (State Q = 0; Q < Input.numStates(); ++Q) {
    if (Twin[Q] == UINT32_MAX)
      continue;
    for (const Buchi::Arc &Arc : Input.arcsFrom(Q))
      A.addTransition(Twin[Q], Arc.Sym, Arc.To);
  }

  // Completion with part-local sinks. The Q1 sink lives in Q1; the Q2 sink
  // is a rejecting deterministic trap, so Q2 stays deterministic and no
  // non-accepting Q2 entry from Q1 is created (Q1's missing symbols go to
  // the Q1 sink).
  State SinkQ1 = UINT32_MAX, SinkQ2 = UINT32_MAX;
  auto Sink = [&](bool ForQ2) -> State {
    State &Slot = ForQ2 ? SinkQ2 : SinkQ1;
    if (Slot != UINT32_MAX)
      return Slot;
    Slot = A.addState();
    InQ2.push_back(ForQ2);
    for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym)
      A.addTransition(Slot, Sym, Slot);
    return Slot;
  };
  uint32_t OriginalStates = A.numStates();
  for (State S = 0; S < OriginalStates; ++S) {
    std::vector<bool> Has(A.numSymbols(), false);
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Has[Arc.Sym] = true;
    for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym)
      if (!Has[Sym])
        A.addTransition(S, Sym, Sink(InQ2[S]));
  }

  Sdba Out{std::move(A), std::move(InQ2)};
  assert(classifySdba(Out.A).IsSemideterministic &&
         "normalization must preserve semideterminism");
  return Out;
}
