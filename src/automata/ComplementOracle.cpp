//===- automata/ComplementOracle.cpp - On-the-fly complements ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/ComplementOracle.h"

#include <deque>
#include <unordered_map>

using namespace termcheck;

Buchi ComplementOracle::materialize() {
  Buchi Out(numSymbols(), 1);
  std::unordered_map<State, State> Map; // oracle id -> explicit id
  std::deque<State> Work;
  auto Intern = [&](State S) {
    auto It = Map.find(S);
    if (It != Map.end())
      return It->second;
    State Fresh = Out.addState();
    if (isAccepting(S))
      Out.setAccepting(Fresh);
    Map.emplace(S, Fresh);
    Work.push_back(S);
    return Fresh;
  };
  for (State S : initialStates())
    Out.addInitial(Intern(S));
  std::vector<State> Buf;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    State From = Map.at(S);
    for (Symbol Sym = 0; Sym < numSymbols(); ++Sym) {
      Buf.clear();
      successors(S, Sym, Buf);
      for (State T : Buf)
        Out.addTransition(From, Sym, Intern(T));
    }
  }
  return Out;
}
