//===- automata/ComplementOracle.cpp - On-the-fly complements ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/ComplementOracle.h"

#include <deque>

using namespace termcheck;

Buchi ComplementOracle::materialize() {
  Buchi Out(numSymbols(), 1);
  // Every oracle hands out small dense-ish ids (intern ids, or the DBA
  // complement's (q << 1) | copy encoding), so the id -> explicit-state map
  // is a flat vector with a sentinel instead of a hash map.
  constexpr State Unmapped = ~State(0);
  std::vector<State> Map;
  std::deque<State> Work;
  auto Intern = [&](State S) {
    if (S >= Map.size())
      Map.resize(S + 1, Unmapped);
    if (Map[S] != Unmapped)
      return Map[S];
    State Fresh = Out.addState();
    if (isAccepting(S))
      Out.setAccepting(Fresh);
    Map[S] = Fresh;
    Work.push_back(S);
    return Fresh;
  };
  for (State S : initialStates())
    Out.addInitial(Intern(S));
  std::vector<State> Buf;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    State From = Map[S];
    for (Symbol Sym = 0; Sym < numSymbols(); ++Sym) {
      Buf.clear();
      successors(S, Sym, Buf);
      for (State T : Buf)
        Out.addTransition(From, Sym, Intern(T));
    }
  }
  return Out;
}
