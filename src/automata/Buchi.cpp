//===- automata/Buchi.cpp - (Generalized) Büchi automata -----------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Buchi.h"

#include <deque>

using namespace termcheck;

bool Buchi::isComplete() const {
  for (State S = 0; S < numStates(); ++S) {
    // Count distinct symbols with at least one outgoing arc.
    std::vector<bool> Seen(Symbols, false);
    uint32_t Distinct = 0;
    for (const Arc &A : Adj[S]) {
      if (!Seen[A.Sym]) {
        Seen[A.Sym] = true;
        ++Distinct;
      }
    }
    if (Distinct != Symbols)
      return false;
  }
  return true;
}

bool Buchi::isDeterministic() const {
  if (Initial.size() > 1)
    return false;
  for (State S = 0; S < numStates(); ++S) {
    std::vector<bool> Seen(Symbols, false);
    for (const Arc &A : Adj[S]) {
      if (Seen[A.Sym])
        return false;
      Seen[A.Sym] = true;
    }
  }
  return true;
}

StateSet Buchi::reachableStates() const {
  std::vector<bool> Seen(numStates(), false);
  std::deque<State> Work;
  for (State S : Initial.elems()) {
    Seen[S] = true;
    Work.push_back(S);
  }
  std::vector<State> Out;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    Out.push_back(S);
    for (const Arc &A : Adj[S]) {
      if (!Seen[A.To]) {
        Seen[A.To] = true;
        Work.push_back(A.To);
      }
    }
  }
  return StateSet(std::move(Out));
}

std::string Buchi::str() const {
  std::string S = "GBA: " + std::to_string(numStates()) + " states, " +
                  std::to_string(Symbols) + " symbols, " +
                  std::to_string(Conditions) + " conditions\n";
  S += "  initial: " + Initial.str() + "\n";
  for (State Q = 0; Q < numStates(); ++Q) {
    S += "  q" + std::to_string(Q);
    if (AcceptMask[Q] != 0)
      S += " [acc mask " + std::to_string(AcceptMask[Q]) + "]";
    S += ":";
    for (const Arc &A : Adj[Q])
      S += " (" + std::to_string(A.Sym) + "->q" + std::to_string(A.To) + ")";
    S += "\n";
  }
  return S;
}
