//===- automata/Buchi.cpp - (Generalized) Büchi automata -----------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Buchi.h"

#include "automata/PerfCounters.h"

#include <algorithm>
#include <deque>
#include <numeric>

using namespace termcheck;

void Buchi::flushDedupSlow() const {
  std::vector<uint32_t> Order;
  std::vector<bool> Drop;
  for (State S : DirtyStates) {
    Dirty[S] = false;
    std::vector<Arc> &Arcs = Adj[S];
    if (Arcs.size() < 2)
      continue;
    // Sort positions by (Sym, To, position); every group's smallest
    // position is the surviving first occurrence. Compacting by position
    // afterwards keeps insertion order, matching the historical eager
    // dedup in addTransition byte for byte.
    Order.resize(Arcs.size());
    std::iota(Order.begin(), Order.end(), 0u);
    std::sort(Order.begin(), Order.end(), [&Arcs](uint32_t A, uint32_t B) {
      if (Arcs[A].Sym != Arcs[B].Sym)
        return Arcs[A].Sym < Arcs[B].Sym;
      if (Arcs[A].To != Arcs[B].To)
        return Arcs[A].To < Arcs[B].To;
      return A < B;
    });
    Drop.assign(Arcs.size(), false);
    bool AnyDrop = false;
    for (size_t I = 1; I < Order.size(); ++I) {
      if (Arcs[Order[I]] == Arcs[Order[I - 1]]) {
        Drop[Order[I]] = true;
        AnyDrop = true;
      }
    }
    if (!AnyDrop)
      continue;
    size_t Keep = 0;
    for (size_t I = 0; I < Arcs.size(); ++I)
      if (!Drop[I])
        Arcs[Keep++] = Arcs[I];
    Arcs.resize(Keep);
  }
  DirtyStates.clear();
}

void Buchi::buildIndex() const {
  flushDedup();
  const size_t Rows = static_cast<size_t>(numStates()) * Symbols;
  Csr.Row.assign(Rows + 1, 0);
  size_t Total = 0;
  for (State S = 0; S < numStates(); ++S) {
    for (const Arc &A : Adj[S])
      ++Csr.Row[static_cast<size_t>(S) * Symbols + A.Sym + 1];
    Total += Adj[S].size();
  }
  for (size_t R = 0; R < Rows; ++R)
    Csr.Row[R + 1] += Csr.Row[R];
  Csr.Targets.resize(Total);
  // Stable counting sort: a scratch cursor per row; scanning each state's
  // arcs in insertion order keeps every (state, symbol) row in
  // first-insertion order, so span queries replay exactly what the old
  // linear filter produced.
  std::vector<uint32_t> Cursor(Csr.Row.begin(), Csr.Row.end() - 1);
  for (State S = 0; S < numStates(); ++S)
    for (const Arc &A : Adj[S])
      Csr.Targets[Cursor[static_cast<size_t>(S) * Symbols + A.Sym]++] = A.To;
  IndexValid = true;
  ++perf::local().CsrRebuilds;
}

bool Buchi::isComplete() const {
  ensureIndex();
  const size_t Rows = static_cast<size_t>(numStates()) * Symbols;
  for (size_t R = 0; R < Rows; ++R)
    if (Csr.Row[R] == Csr.Row[R + 1])
      return false;
  return true;
}

bool Buchi::isDeterministic() const {
  if (Initial.size() > 1)
    return false;
  ensureIndex();
  const size_t Rows = static_cast<size_t>(numStates()) * Symbols;
  for (size_t R = 0; R < Rows; ++R)
    if (Csr.Row[R + 1] - Csr.Row[R] > 1)
      return false;
  return true;
}

StateSet Buchi::reachableStates() const {
  flushDedup();
  std::vector<bool> Seen(numStates(), false);
  std::deque<State> Work;
  for (State S : Initial.elems()) {
    Seen[S] = true;
    Work.push_back(S);
  }
  std::vector<State> Out;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    Out.push_back(S);
    for (const Arc &A : Adj[S]) {
      if (!Seen[A.To]) {
        Seen[A.To] = true;
        Work.push_back(A.To);
      }
    }
  }
  return StateSet(std::move(Out));
}

std::string Buchi::str() const {
  flushDedup();
  std::string S = "GBA: " + std::to_string(numStates()) + " states, " +
                  std::to_string(Symbols) + " symbols, " +
                  std::to_string(Conditions) + " conditions\n";
  S += "  initial: " + Initial.str() + "\n";
  for (State Q = 0; Q < numStates(); ++Q) {
    S += "  q" + std::to_string(Q);
    if (AcceptMask[Q] != 0)
      S += " [acc mask " + std::to_string(AcceptMask[Q]) + "]";
    S += ":";
    for (const Arc &A : Adj[Q])
      S += " (" + std::to_string(A.Sym) + "->q" + std::to_string(A.To) + ")";
    S += "\n";
  }
  return S;
}
