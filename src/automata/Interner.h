//===- automata/Interner.h - Arena-backed macro-state interning -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared intern-table machinery behind every lazily constructed
/// complement: NCSB macro-states (Section 5), the subset-construction
/// states of the finite-trace complement (Section 3.1.2), rank states
/// (Kupferman-Vardi), and the (aState, cState) pairs of the on-the-fly
/// product (Section 4). Complementation throughput is dominated by
/// successor enumeration and macro-state dedup, so this table is built for
/// the dedup half:
///
///  * values live in a chunked arena -- growth never moves an element, so
///    `const T &` references handed out by operator[] stay valid across
///    later intern() calls (no more "copy because intern() may grow the
///    vector" workarounds);
///  * ids are dense and assigned in first-intern order, so a sequence of
///    intern() calls yields exactly the same ids as the historical
///    vector + hash-bucket implementation (construction determinism);
///  * the lookup index is a single open-addressing table over precomputed
///    hashes: one flat allocation, linear probing, no per-bucket vectors to
///    rehash and copy as the table grows (rehashing reinserts ids by their
///    stored hash and never re-touches the values).
///
/// `T` needs `size_t hash() const`, `operator==`, a default constructor,
/// and move assignment.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_INTERNER_H
#define TERMCHECK_AUTOMATA_INTERNER_H

#include "automata/PerfCounters.h"
#include "automata/StateSet.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace termcheck {

/// Arena-backed intern table with stable references and dense ids.
template <typename T> class Interner {
public:
  /// Interns \p V: \returns the id of the existing equal value, or a fresh
  /// dense id with \p V moved into the arena.
  State intern(T V) {
    size_t H = V.hash();
    if (Count * 8 >= Table.size() * 5) // load factor 5/8
      growTable();
    size_t Mask = Table.size() - 1;
    size_t Idx = H & Mask;
    while (Table[Idx] != Empty) {
      State Id = Table[Idx];
      if (Hashes[Id] == H && (*this)[Id] == V) {
        ++perf::local().InternHits;
        return Id;
      }
      Idx = (Idx + 1) & Mask;
    }
    State Id = static_cast<State>(Count);
    if ((Count & ChunkMask) == 0)
      Chunks.push_back(std::make_unique<T[]>(ChunkSize));
    Chunks[Count >> ChunkShift][Count & ChunkMask] = std::move(V);
    Hashes.push_back(H);
    ++Count;
    Table[Idx] = Id;
    ++perf::local().InternMisses;
    return Id;
  }

  /// Interns \p V without consuming it: the arena copy happens only on a
  /// miss. Lets hot loops probe with a reused scratch value -- the common
  /// already-interned case then allocates nothing at all.
  State internRef(const T &V) {
    size_t H = V.hash();
    if (Count * 8 >= Table.size() * 5)
      growTable();
    size_t Mask = Table.size() - 1;
    size_t Idx = H & Mask;
    while (Table[Idx] != Empty) {
      State Id = Table[Idx];
      if (Hashes[Id] == H && (*this)[Id] == V) {
        ++perf::local().InternHits;
        return Id;
      }
      Idx = (Idx + 1) & Mask;
    }
    State Id = static_cast<State>(Count);
    if ((Count & ChunkMask) == 0)
      Chunks.push_back(std::make_unique<T[]>(ChunkSize));
    Chunks[Count >> ChunkShift][Count & ChunkMask] = V;
    Hashes.push_back(H);
    ++Count;
    Table[Idx] = Id;
    ++perf::local().InternMisses;
    return Id;
  }

  /// The value behind \p Id. The reference is stable: it survives every
  /// later intern() (the arena grows by whole chunks, never reallocates).
  const T &operator[](State Id) const {
    assert(Id < Count && "unknown intern id");
    return Chunks[Id >> ChunkShift][Id & ChunkMask];
  }

  size_t size() const { return Count; }

private:
  static constexpr size_t ChunkShift = 6;
  static constexpr size_t ChunkSize = size_t(1) << ChunkShift;
  static constexpr size_t ChunkMask = ChunkSize - 1;
  static constexpr State Empty = ~State(0);

  std::vector<std::unique_ptr<T[]>> Chunks;
  std::vector<size_t> Hashes;               ///< precomputed, by id
  std::vector<State> Table{Empty, Empty,    ///< open addressing, id or Empty
                           Empty, Empty, Empty, Empty, Empty, Empty};
  size_t Count = 0;

  void growTable() {
    std::vector<State> Next(Table.size() * 2, Empty);
    size_t Mask = Next.size() - 1;
    for (size_t Id = 0; Id < Count; ++Id) {
      size_t Idx = Hashes[Id] & Mask;
      while (Next[Idx] != Empty)
        Idx = (Idx + 1) & Mask;
      Next[Idx] = static_cast<State>(Id);
    }
    Table = std::move(Next);
  }
};

/// Open-addressing intern table for (left, right) state pairs packed into a
/// 64-bit key: the product states of the difference engine, degeneralization
/// layers, and lasso-membership products. Ids are dense in first-intern
/// order; the caller keeps its own id -> payload side table.
class PairInterner {
public:
  /// Interns the pair \p P, \p Q. \returns (id, inserted).
  std::pair<State, bool> intern(State P, State Q) {
    uint64_t Key = (static_cast<uint64_t>(P) << 32) | Q;
    if (Keys.size() * 8 >= Table.size() * 5)
      growTable();
    size_t Mask = Table.size() - 1;
    size_t Idx = mix(Key) & Mask;
    while (Table[Idx] != Empty) {
      State Id = Table[Idx];
      if (Keys[Id] == Key)
        return {Id, false};
      Idx = (Idx + 1) & Mask;
    }
    State Id = static_cast<State>(Keys.size());
    Keys.push_back(Key);
    Table[Idx] = Id;
    return {Id, true};
  }

  /// Decodes an id back into its (left, right) pair.
  std::pair<State, State> get(State Id) const {
    assert(Id < Keys.size() && "unknown pair id");
    return {static_cast<State>(Keys[Id] >> 32),
            static_cast<State>(Keys[Id] & 0xffffffffULL)};
  }

  size_t size() const { return Keys.size(); }

private:
  static constexpr State Empty = ~State(0);

  std::vector<uint64_t> Keys;
  std::vector<State> Table{Empty, Empty, Empty, Empty,
                           Empty, Empty, Empty, Empty};

  /// splitmix64 finalizer: the raw packed key is far too regular (dense
  /// state ids in both halves) for masked linear probing.
  static uint64_t mix(uint64_t X) {
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  void growTable() {
    std::vector<State> Next(Table.size() * 2, Empty);
    size_t Mask = Next.size() - 1;
    for (size_t Id = 0; Id < Keys.size(); ++Id) {
      size_t Idx = mix(Keys[Id]) & Mask;
      while (Next[Idx] != Empty)
        Idx = (Idx + 1) & Mask;
      Next[Idx] = static_cast<State>(Id);
    }
    Table = std::move(Next);
  }
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_INTERNER_H
