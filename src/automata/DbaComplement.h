//===- automata/DbaComplement.h - Kurshan DBA complement ------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Complementation of deterministic Büchi automata in linear space
/// (Kurshan [35]; the stage-2 deterministic certified module M_det is
/// complemented this way). A word is rejected by a complete DBA iff its
/// unique run visits the accepting set only finitely often, so the
/// complement runs the DBA and nondeterministically jumps into a second
/// copy restricted to non-accepting states; staying in that copy forever is
/// accepting.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_DBACOMPLEMENT_H
#define TERMCHECK_AUTOMATA_DBACOMPLEMENT_H

#include "automata/ComplementOracle.h"

namespace termcheck {

/// Lazy Kurshan complement of a complete DBA.
class DbaComplementOracle : public ComplementOracle {
public:
  /// \p A must be deterministic and complete with one acceptance condition.
  /// The oracle keeps a reference; \p A must outlive it.
  explicit DbaComplementOracle(const Buchi &A);

  uint32_t numSymbols() const override { return A.numSymbols(); }
  std::vector<State> initialStates() override;
  void successors(State S, Symbol Sym, std::vector<State> &Out) override;
  bool isAccepting(State S) override { return (S & 1) != 0; }
  size_t numStatesDiscovered() const override;

private:
  // Macro-state encoding: (q << 1) | copy; copy 1 states are the
  // waiting-for-no-more-accepting copy and are never accepting DBA states.
  const Buchi &A;
  std::vector<bool> Seen;

  State encode(State Q, bool Copy2);
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_DBACOMPLEMENT_H
