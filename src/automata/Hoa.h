//===- automata/Hoa.h - HOA-format interop --------------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of (generalized) Büchi automata in the Hanoi Omega
/// Automata format (HOA v1), the interchange format of the Spot / Owl /
/// Seminator ecosystem the paper's algorithms live in. Our dense symbol
/// alphabet is encoded over ceil(log2(|Sigma|)) atomic propositions: symbol
/// s is the conjunction fixing every AP to the corresponding bit of s.
///
/// The reader accepts the subset the writer emits (state-based generalized
/// Büchi acceptance, complete single-symbol edge labels) plus `t` labels
/// (all symbols); it is meant for round-tripping corpora between runs and
/// importing automata produced by external tools under those conventions.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_HOA_H
#define TERMCHECK_AUTOMATA_HOA_H

#include "automata/Buchi.h"

#include <optional>
#include <string>

namespace termcheck {

/// Renders \p A in HOA v1.
std::string toHoa(const Buchi &A, const std::string &Name = "termcheck");

/// Result of parsing a HOA document.
struct HoaParseResult {
  std::optional<Buchi> A;
  std::string Error; // empty on success
  bool ok() const { return A.has_value(); }
};

/// Parses the HOA subset documented above. The number of alphabet symbols
/// is 2^|AP| (every AP valuation is a symbol).
HoaParseResult parseHoa(const std::string &Text);

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_HOA_H
