//===- automata/DbaComplement.cpp - Kurshan DBA complement ---------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/DbaComplement.h"

#include <algorithm>
#include <cassert>

using namespace termcheck;

DbaComplementOracle::DbaComplementOracle(const Buchi &A) : A(A) {
  assert(A.numConditions() == 1 && "DBA complement expects a plain BA");
  assert(A.isDeterministic() && "DBA complement expects a DBA");
  assert(A.isComplete() && "DBA complement expects a complete DBA");
  Seen.assign(static_cast<size_t>(A.numStates()) * 2, false);
  A.ensureIndex(); // one build up front; the input never mutates
}

State DbaComplementOracle::encode(State Q, bool Copy2) {
  State Id = (Q << 1) | (Copy2 ? 1 : 0);
  Seen[Id] = true;
  return Id;
}

size_t DbaComplementOracle::numStatesDiscovered() const {
  return static_cast<size_t>(std::count(Seen.begin(), Seen.end(), true));
}

std::vector<State> DbaComplementOracle::initialStates() {
  std::vector<State> Out;
  for (State Q : A.initials().elems()) {
    Out.push_back(encode(Q, false));
    if (A.acceptMask(Q) == 0)
      Out.push_back(encode(Q, true));
  }
  return Out;
}

void DbaComplementOracle::successors(State S, Symbol Sym,
                                     std::vector<State> &Out) {
  State Q = S >> 1;
  bool Copy2 = (S & 1) != 0;
  A.forEachSuccessor(Q, Sym, [&](State To) {
    if (!Copy2) {
      Out.push_back(encode(To, false));
      if (A.acceptMask(To) == 0)
        Out.push_back(encode(To, true));
    } else if (A.acceptMask(To) == 0) {
      Out.push_back(encode(To, true));
    }
  });
}
