//===- automata/NestedDfs.cpp - CVWY nested-DFS emptiness ----------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/NestedDfs.h"

#include "automata/DfsFrames.h"

#include <algorithm>
#include <cassert>

using namespace termcheck;

namespace {

/// Shared state of one nested-DFS run. Both searches iterate arcs through
/// the shared ExplicitArcFrame (DfsFrames.h), which carries the incoming
/// symbol needed for lasso reconstruction.
struct NestedDfsRun {
  const Buchi &A;
  std::vector<bool> BlueVisited;
  std::vector<bool> OnBlueStack;
  std::vector<bool> RedVisited;

  std::vector<ExplicitArcFrame> BlueStack;

  explicit NestedDfsRun(const Buchi &A)
      : A(A), BlueVisited(A.numStates(), false),
        OnBlueStack(A.numStates(), false), RedVisited(A.numStates(), false) {}

  /// Red DFS from \p Seed: \returns the symbol path of a walk from Seed to
  /// some state on the blue stack (the closing state is appended to
  /// \p Closing), or std::nullopt.
  std::optional<std::vector<Symbol>> redSearch(State Seed, State &Closing) {
    std::vector<ExplicitArcFrame> Stack{{A, Seed}};
    RedVisited[Seed] = true;
    while (!Stack.empty()) {
      ExplicitArcFrame &F = Stack.back();
      if (F.done()) {
        Stack.pop_back();
        continue;
      }
      const Buchi::Arc &Arc = F.next();
      if (OnBlueStack[Arc.To]) {
        // Found a cycle closing into the blue stack.
        std::vector<Symbol> Path;
        for (size_t I = 1; I < Stack.size(); ++I)
          Path.push_back(Stack[I].InSym);
        Path.push_back(Arc.Sym);
        Closing = Arc.To;
        return Path;
      }
      if (!RedVisited[Arc.To]) {
        RedVisited[Arc.To] = true;
        Stack.push_back({A, Arc.To, Arc.Sym});
      }
    }
    return std::nullopt;
  }

  /// Blue DFS from \p Root; \returns an accepting lasso if one exists in
  /// this exploration.
  std::optional<LassoWord> blueSearch(State Root) {
    BlueVisited[Root] = true;
    OnBlueStack[Root] = true;
    BlueStack.push_back({A, Root});
    while (!BlueStack.empty()) {
      ExplicitArcFrame &F = BlueStack.back();
      if (!F.done()) {
        const Buchi::Arc &Arc = F.next();
        if (!BlueVisited[Arc.To]) {
          BlueVisited[Arc.To] = true;
          OnBlueStack[Arc.To] = true;
          BlueStack.push_back({A, Arc.To, Arc.Sym});
        }
        continue;
      }
      // Post-order on F.S: red search from accepting states. Red marks
      // persist across searches (the classic CVWY invariant), but the seed
      // is always expanded because the blue stack has changed.
      State S = F.S;
      if (A.acceptMask(S) != 0) {
        State Closing = 0;
        if (auto RedPath = redSearch(S, Closing)) {
          // Lasso: stem = blue-stack prefix up to Closing; loop =
          // blue-stack segment Closing..S plus the red path back.
          LassoWord W;
          size_t ClosePos = 0;
          for (size_t I = 0; I < BlueStack.size(); ++I) {
            if (BlueStack[I].S == Closing) {
              ClosePos = I;
              break;
            }
          }
          for (size_t I = 1; I <= ClosePos; ++I)
            W.Stem.push_back(BlueStack[I].InSym);
          for (size_t I = ClosePos + 1; I < BlueStack.size(); ++I)
            W.Loop.push_back(BlueStack[I].InSym);
          for (Symbol Sym : *RedPath)
            W.Loop.push_back(Sym);
          return W;
        }
      }
      OnBlueStack[S] = false;
      BlueStack.pop_back();
    }
    return std::nullopt;
  }
};

} // namespace

std::optional<LassoWord> termcheck::findLassoNestedDfs(const Buchi &A) {
  assert(A.numConditions() == 1 &&
         "nested DFS handles plain BAs; degeneralize first");
  NestedDfsRun Run(A);
  for (State Root : A.initials().elems()) {
    if (Run.BlueVisited[Root])
      continue;
    if (auto W = Run.blueSearch(Root))
      return W;
  }
  return std::nullopt;
}

bool termcheck::isEmptyNestedDfs(const Buchi &A) {
  return !findLassoNestedDfs(A).has_value();
}
