//===- automata/DfsFrames.h - Shared DFS arc-frame iteration --*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One arc-iteration path for every iterative DFS in the automata layer.
///
/// PR 5 left the per-frame arc cache duplicated three ways: the blue and
/// red stacks of NestedDfs and sccDecompose's TFrame each carried their own
/// `const std::vector<Arc> *` plus cursor, and UselessStateRemover's frames
/// heap-allocated a fresh successor vector per state. The Couvreur engine
/// would have added a fourth copy. Two helpers remove the duplication:
///
/// * ExplicitArcFrame -- a cached span over Buchi::arcsFrom for explicit
///   automata. arcsFrom's row reference is stable while no state is added,
///   which every DFS here guarantees, so the span is cached once at push.
/// * ArcArena -- the GbaSource-side equivalent. Implicit sources append
///   successors into a caller-provided buffer, so frames own slices of one
///   shared arena instead of a vector each; the LIFO discipline of DFS lets
///   a popped frame's slice be reclaimed by a single resize, and the arena
///   reaches steady-state capacity after the first deep path.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_DFSFRAMES_H
#define TERMCHECK_AUTOMATA_DFSFRAMES_H

#include "automata/Buchi.h"

#include <cassert>
#include <vector>

namespace termcheck {

/// DFS frame over an explicit automaton: the state plus a cursor into its
/// (stable) arc row. Frames are POD-sized, so the frame stack never
/// allocates per push once its capacity is warm.
struct ExplicitArcFrame {
  State S;
  const Buchi::Arc *Cur;
  const Buchi::Arc *End;
  /// Symbol on the edge that discovered S (DFS roots leave it 0); carried
  /// for the lasso-reconstructing searches, ignored by the others.
  Symbol InSym;

  ExplicitArcFrame(const Buchi &A, State S, Symbol InSym = 0)
      : S(S), InSym(InSym) {
    const std::vector<Buchi::Arc> &Arcs = A.arcsFrom(S);
    Cur = Arcs.data();
    End = Cur + Arcs.size();
  }

  bool done() const { return Cur == End; }
  /// Precondition: !done(). Advances the cursor.
  const Buchi::Arc &next() { return *Cur++; }
};

/// Shared successor storage for DFS over a GbaSource. Each frame is a slice
/// [Begin, End) of one arena vector with a cursor; pop() truncates the
/// arena back, so the arena's high-water mark is the successor count of the
/// deepest DFS path, not of the whole exploration.
///
/// Arc references returned by next() are invalidated by the next push()
/// (the arena may reallocate); callers copy the arc by value, which is what
/// every DFS loop here does anyway.
class ArcArena {
public:
  struct Frame {
    State S;
    size_t Begin; ///< first arc of the slice (arena index)
    size_t Idx;   ///< cursor (arena index), Begin <= Idx <= End
    size_t End;   ///< one past the last arc of the slice
  };

  /// Appends S's successors to the arena and returns the new frame.
  template <typename Source> Frame push(Source &Src, State S) {
    size_t Begin = Arena.size();
    Src.arcs(S, Arena);
    return {S, Begin, Begin, Arena.size()};
  }

  /// Reclaims the top frame's slice. Frames MUST be popped LIFO.
  void pop(const Frame &F) {
    assert(Arena.size() == F.End && "arena frames must be popped LIFO");
    Arena.resize(F.Begin);
  }

  bool done(const Frame &F) const { return F.Idx == F.End; }
  /// Precondition: !done(F). Advances F's cursor. The reference dies at the
  /// next push(); copy the arc.
  const Buchi::Arc &next(Frame &F) { return Arena[F.Idx++]; }

private:
  std::vector<Buchi::Arc> Arena;
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_DFSFRAMES_H
