//===- automata/Emptiness.cpp - Pluggable Buchi emptiness engines --------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Emptiness.h"

#include "automata/CouvreurEmptiness.h"
#include "automata/EmptinessInternal.h"
#include "automata/Simulation.h"

#include <algorithm>

using namespace termcheck;

const char *termcheck::emptinessStrategyName(EmptinessStrategy S) {
  switch (S) {
  case EmptinessStrategy::GaiserSchwoon:
    return "gaiser_schwoon";
  case EmptinessStrategy::Couvreur:
    return "couvreur";
  case EmptinessStrategy::Auto:
    return "auto";
  }
  return "?";
}

bool termcheck::emptinessStrategyFromName(std::string_view Name,
                                          EmptinessStrategy &S) {
  if (Name == "gaiser_schwoon") {
    S = EmptinessStrategy::GaiserSchwoon;
    return true;
  }
  if (Name == "couvreur") {
    S = EmptinessStrategy::Couvreur;
    return true;
  }
  if (Name == "auto") {
    S = EmptinessStrategy::Auto;
    return true;
  }
  return false;
}

EmptinessResult GaiserSchwoonEmptiness::check(GbaSource &Src,
                                              const EmptinessOptions &Opts) {
  detail::RecordingSource Rec(Src);
  GbaSource &S = Opts.FindWitness ? static_cast<GbaSource &>(Rec) : Src;

  UselessStateRemover R;
  R.StopAtFirstAccepting = true;
  R.ShouldAbort = Opts.ShouldAbort;
  R.PollStride = Opts.PollStride;
  R.IsKnownUseless = Opts.IsKnownEmpty;
  R.AddUseless = Opts.AddKnownEmpty;
  RemoveUselessResult RR = R.run(S);

  EmptinessResult Out;
  Out.IsEmpty = RR.LanguageEmpty;
  Out.Aborted = RR.Aborted;
  Out.StatesExplored = RR.StatesExplored;
  if (!Out.IsEmpty && !Out.Aborted && Opts.FindWitness)
    Out.Witness = Rec.buildWitness();
  return Out;
}

EmptinessResult termcheck::checkEmptiness(const Buchi &A, EmptinessStrategy S,
                                          EmptinessOptions Base) {
  ExplicitGbaSource Src(A);
  if (S == EmptinessStrategy::GaiserSchwoon) {
    GaiserSchwoonEmptiness E;
    return E.check(Src, Base);
  }

  // Couvreur; Auto resolves here because an explicit query is always
  // emptiness-only, which is exactly where the early cutoffs pay off.
  std::optional<SimulationRelation> Sim;
  if (!Base.SubsumedBy && A.numStates() <= SimulationStateCap) {
    Sim = computeDirectSimulation(A, Base.ShouldAbort);
    if (Sim->Aborted) {
      Sim.reset();
    } else {
      Base.SubsumedBy = [SimPtr = &*Sim](State Sub, State Sup) {
        return SimPtr->simulates(Sub, Sup);
      };
      // Direct simulation preserves acceptance at every step, so it is an
      // early relation (Proposition 6.1: direct subset-of early).
      Base.SubsumptionIsEarly = true;
    }
  }

  // A small closed-state antichain under the same preorder (only built
  // when nobody supplied their own hooks alongside a relation).
  std::vector<State> Chain;
  constexpr size_t ChainCap = 256;
  if (Base.SubsumedBy && !Base.IsKnownEmpty && !Base.AddKnownEmpty) {
    const auto &Sub = Base.SubsumedBy;
    Base.IsKnownEmpty = [&Chain, &Sub](State Q) {
      return std::any_of(Chain.begin(), Chain.end(),
                         [&](State R) { return Sub(Q, R); });
    };
    Base.AddKnownEmpty = [&Chain, &Sub](State Q) {
      for (State R : Chain)
        if (Sub(Q, R))
          return;
      Chain.erase(std::remove_if(Chain.begin(), Chain.end(),
                                 [&](State R) { return Sub(R, Q); }),
                  Chain.end());
      if (Chain.size() < ChainCap)
        Chain.push_back(Q);
    };
    Base.ResetKnownEmpty = [&Chain] { Chain.clear(); };
  }

  CouvreurEmptiness E;
  return E.check(Src, Base);
}
