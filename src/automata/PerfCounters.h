//===- automata/PerfCounters.h - Hot-path perf counters -------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-local counters for the automata hot paths: CSR transition-index
/// rebuilds (Buchi), macro-state intern-table hits/misses (Interner), and
/// product arcs memoized (the difference engine's per-state arc memo).
///
/// They are thread-local rather than per-object because the structures that
/// bump them (every Buchi, every oracle's intern table) are created and
/// destroyed deep inside the refinement loop, long before the analyzer
/// assembles its Statistics bag. An analysis run executes entirely on one
/// thread (the portfolio schedules whole runs onto pool threads), so a
/// snapshot/delta pair around TerminationAnalyzer::run() attributes the
/// counts to exactly that run -- deterministically, with no atomics on the
/// hot path.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_PERFCOUNTERS_H
#define TERMCHECK_AUTOMATA_PERFCOUNTERS_H

#include <cstdint>

namespace termcheck {
namespace perf {

/// The counter bag. Values only ever increase; consumers subtract a
/// snapshot taken at the start of the region they want to attribute.
struct Counters {
  /// Lazy CSR transition-index builds (Buchi::ensureIndex misses).
  uint64_t CsrRebuilds = 0;
  /// Intern-table lookups that found an existing macro-state.
  uint64_t InternHits = 0;
  /// Intern-table lookups that created a fresh macro-state.
  uint64_t InternMisses = 0;
  /// Product arcs stored in the difference engine's per-state memo.
  uint64_t ArcsMemoized = 0;
  /// Modular complement engines built (one per successful decomposition).
  uint64_t ModularBuilds = 0;
  /// Partial-complement components across all modular builds.
  uint64_t ModularComponents = 0;
  /// Components complemented by an engine cheaper than the rank-based
  /// fallback (finite-trace subset, Kurshan DBA, or NCSB).
  uint64_t ModularCheapComponents = 0;
  /// SCCs fully closed by the Couvreur emptiness engine.
  uint64_t CouvreurSccs = 0;
  /// Successors pruned by the Couvreur engine's cutoffs (on-stack
  /// simulation prunes plus closed-antichain prunes).
  uint64_t CouvreurCutoffs = 0;
};

/// This thread's counter bag.
inline Counters &local() {
  thread_local Counters C;
  return C;
}

} // namespace perf
} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_PERFCOUNTERS_H
