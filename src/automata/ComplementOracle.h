//===- automata/ComplementOracle.h - On-the-fly complements ---*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-the-fly interface behind optimization 1 of Section 4: "B-bar is
/// constructed on the fly when constructing the product, i.e., only those
/// states of B-bar that occur in some product state are constructed". Every
/// complementation procedure in this library (finite-trace, DBA, NCSB
/// original/lazy, rank-based) implements this interface; the difference
/// engine and Algorithm 1 then drive it lazily, and Figure 4's benches
/// materialize it eagerly to count states and transitions.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_COMPLEMENTORACLE_H
#define TERMCHECK_AUTOMATA_COMPLEMENTORACLE_H

#include "automata/Buchi.h"

#include <functional>

namespace termcheck {

/// A lazily constructed complement BA. Implementations intern their
/// macro-states and hand out dense ids.
class ComplementOracle {
public:
  virtual ~ComplementOracle() = default;

  /// Optional cooperative-cancellation hook. Oracles whose successor
  /// enumeration can be super-linear (the NCSB 2^|Free| split loops) poll
  /// it between emissions; when it returns true they stop enumerating,
  /// set \ref aborted, and return a truncated (unsound) successor list.
  /// The difference engine checks aborted() after its search and discards
  /// the whole construction, so truncation never leaks into a result.
  std::function<bool()> ShouldAbort;

  /// Sets how many pollAbort() calls pass between two real evaluations of
  /// ShouldAbort. The default stride (256) is right for pure wall-clock /
  /// cancellation hooks; budget enforcement (state caps, resource guards)
  /// installs a small stride so small constructions cannot finish -- or
  /// overshoot the budget -- entirely between polls. Virtual so composite
  /// oracles (the modular combinator) can forward the stride to their
  /// component oracles.
  virtual void setPollStride(uint32_t Stride) {
    PollStride = Stride == 0 ? 1 : Stride;
    AbortPollCountdown = PollStride;
  }

  /// \returns true once a successor enumeration was cut short by
  /// ShouldAbort; every result derived from this oracle is then invalid.
  bool aborted() const { return Aborted; }

  /// The alphabet size (matches the complemented automaton).
  virtual uint32_t numSymbols() const = 0;

  /// Initial macro-states (deterministic order).
  virtual std::vector<State> initialStates() = 0;

  /// Appends the \p Sym successors of \p S to \p Out (deterministic order).
  virtual void successors(State S, Symbol Sym, std::vector<State> &Out) = 0;

  /// \returns true when \p S is an accepting macro-state.
  virtual bool isAccepting(State S) = 0;

  /// Number of macro-states discovered so far.
  virtual size_t numStatesDiscovered() const = 0;

  /// Subsumption for Section 6's antichain: \returns true when
  /// L(Sub) subseteq L(Sup) is guaranteed by the oracle's relation
  /// (`Sub [=' Sup`). The default is plain equality, which is always sound.
  virtual bool subsumedBy(State Sub, State Sup) const { return Sub == Sup; }

  /// \returns true when subsumedBy is an EARLY simulation-style preorder
  /// (PLDI'18 Section 6.1): along any run of Sub the matching run of Sup
  /// covers acceptance no later. Required by the Couvreur emptiness
  /// engine's on-stack cutoff -- plain language inclusion is NOT enough
  /// there (it still suffices for the frontier antichain). The default is
  /// conservative; NCSB-Lazy's [=_B overrides it (B(Sub) supseteq B(Sup)
  /// forces acceptance, B = emptyset, stepwise).
  virtual bool subsumptionIsEarly() const { return false; }

  /// Eagerly explores every reachable macro-state into an explicit BA
  /// (acceptance condition 0 = oracle acceptance). Used by the Figure 4
  /// benchmarks, where complement sizes themselves are the measurement.
  Buchi materialize();

protected:
  /// Polls ShouldAbort every few hundred calls (cheap enough for inner
  /// loops); latches \ref Aborted on the first positive answer.
  bool pollAbort() {
    if (Aborted)
      return true;
    if (!ShouldAbort)
      return false;
    if (--AbortPollCountdown != 0)
      return false;
    AbortPollCountdown = PollStride;
    if (ShouldAbort())
      Aborted = true;
    return Aborted;
  }

  /// Latches \ref Aborted directly. Composite oracles use this to surface
  /// a component oracle's truncation as their own: once any component cut
  /// a successor list short, every tuple state derived from it is invalid.
  void markAborted() { Aborted = true; }

private:
  bool Aborted = false;
  uint32_t PollStride = 256;
  uint32_t AbortPollCountdown = 256;
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_COMPLEMENTORACLE_H
