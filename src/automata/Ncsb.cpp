//===- automata/Ncsb.cpp - NCSB complementation of SDBAs ------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Ncsb.h"

#include "support/Error.h"
#include "support/FaultInjector.h"

#include <cassert>

using namespace termcheck;

NcsbOracle::NcsbOracle(const Sdba &In, NcsbVariant Variant)
    : In(In), Variant(Variant) {
  assert(In.A.isComplete() && "NCSB expects a complete SDBA");
  In.A.ensureIndex(); // one build up front; the input never mutates
}

std::vector<State> NcsbOracle::initialStates() {
  // (Q1 cap QI, Q2 cap QI, empty, Q2 cap QI), Definition 5.1.
  NcsbMacroState M;
  for (State S : In.A.initials().elems()) {
    if (In.inQ2(S)) {
      M.C.insert(S);
      M.B.insert(S);
    } else {
      M.N.insert(S);
    }
  }
  return {intern(std::move(M))};
}

void NcsbOracle::delta2Into(const StateSet &X, Symbol Sym, StateSet &Out) {
  ScratchA.clear();
  for (State S : X.elems()) {
    assert(In.inQ2(S) && "delta2 applies to Q2 states only");
    In.A.successorsInto(S, Sym, ScratchA);
  }
  Out.assignNormalized(ScratchA); // normalize once (sort + unique)
}

void NcsbOracle::deltaFromN(const StateSet &N, Symbol Sym, StateSet &N1,
                            StateSet &T) {
  ScratchA.clear();
  ScratchB.clear();
  for (State S : N.elems()) {
    In.A.forEachSuccessor(S, Sym, [this](State To) {
      (In.inQ2(To) ? ScratchB : ScratchA).push_back(To);
    });
  }
  N1.assignNormalized(ScratchA);
  T.assignNormalized(ScratchB);
}

void NcsbOracle::acceptingInto(const StateSet &X, StateSet &Out) {
  ScratchA.clear();
  for (State S : X.elems())
    if (In.isAccepting(S))
      ScratchA.push_back(S);
  Out.assignNormalized(ScratchA); // already sorted; the sort is a no-op scan
}

bool NcsbOracle::anyAccepting(const StateSet &X) const {
  for (State S : X.elems())
    if (In.isAccepting(S))
      return true;
  return false;
}

template <typename Fn>
void NcsbOracle::enumerateSplits(const StateSet &FreeSet, Fn Emit) {
  const auto &Elems = FreeSet.elems();
  // A free set this wide means 2^|Free| successor macro-states: not a bug
  // but an input the construction cannot afford. Raising ResourceExhausted
  // (instead of the old assert, which vanished under NDEBUG and left a
  // multi-hour loop) lets the analyzer retire this subtraction and degrade.
  if (Elems.size() > 24)
    throw EngineError(ErrorKind::ResourceExhausted,
                      "NCSB free-set explosion (" +
                          std::to_string(Elems.size()) + " states)");
  uint32_t Count = 1u << Elems.size();
  for (uint32_t Bits = 0; Bits < Count; ++Bits) {
    // 2^|Free| emissions happen between two polls of the difference
    // engine's own budget hook, so a losing portfolio configuration could
    // otherwise sit here long after the race is decided. A truncated
    // enumeration is unsound; aborted() tells the caller to discard it.
    if (pollAbort())
      return;
    SplitA.clear();
    SplitB.clear();
    for (size_t I = 0; I < Elems.size(); ++I) {
      // Elems is sorted and scanned in order, so both splits come out
      // sorted and duplicate-free, as assignUnion requires.
      if (Bits & (1u << I))
        SplitA.push_back(Elems[I]);
      else
        SplitB.push_back(Elems[I]);
    }
    Emit(SplitA, SplitB);
  }
}

void NcsbOracle::successors(State S, Symbol Sym, std::vector<State> &Out) {
  FaultInjector::hit(FaultSite::NcsbSuccessor);
  // The arena-backed interner hands out stable references, so the
  // macro-state can be read in place while intern() discovers successors.
  const NcsbMacroState &M = Macro[S];
  if (Variant == NcsbVariant::Original)
    succOriginal(M, Sym, Out);
  else
    succLazy(M, Sym, Out);
}

void NcsbOracle::succOriginal(const NcsbMacroState &M, Symbol Sym,
                              std::vector<State> &Out) {
  // Definition 5.1. D = delta_t(N, a) cup delta_2(C cup S, a) must be
  // partitioned into C' and S' with
  //   S' supseteq delta_2(S, a)           (rule 4)
  //   C' supseteq delta_2(C \ F, a)       (rule 5)
  //   C' supseteq D cap F                 (S' is accepting-free)
  deltaFromN(M.N, Sym, NPrime, T);
  ScratchA.clear(); // delta2(C cup S) in one collect-then-normalize pass
  for (State S : M.C.elems()) {
    assert(In.inQ2(S) && "C must stay inside Q2");
    In.A.successorsInto(S, Sym, ScratchA);
  }
  for (State S : M.S.elems()) {
    assert(In.inQ2(S) && "S must stay inside Q2");
    In.A.successorsInto(S, Sym, ScratchA);
  }
  Tmp1.assignNormalized(ScratchA);
  D.assignUnion(T, Tmp1);

  delta2Into(M.S, Sym, MustS);
  if (anyAccepting(MustS))
    return; // blocked: a safe run touched an accepting state
  acceptingInto(M.C, Tmp1);          // C cap F
  Tmp2.assignDifference(M.C, Tmp1);  // C \ F
  delta2Into(Tmp2, Sym, Tmp1);       // delta2(C \ F)
  acceptingInto(D, Tmp2);            // D cap F
  Must2.assignUnion(Tmp1, Tmp2);     // MustC
  if (Must2.intersects(MustS))
    return; // blocked: rule 3 cannot hold

  Tmp1.assignUnion(Must2, MustS);
  Free.assignDifference(D, Tmp1);
  bool BEmpty = M.B.empty();
  if (BEmpty)
    BSucc.clear();
  else
    delta2Into(M.B, Sym, BSucc);
  ScratchNext.N = NPrime; // invariant across the splits
  enumerateSplits(
      Free, [&](const std::vector<State> &ToC, const std::vector<State> &ToS) {
        ScratchNext.C.assignUnion(Must2, ToC);
        ScratchNext.S.assignUnion(MustS, ToS);
        if (BEmpty)
          ScratchNext.B = ScratchNext.C;
        else
          ScratchNext.B.assignIntersection(BSucc, ScratchNext.C);
        Out.push_back(Macro.internRef(ScratchNext));
      });
}

void NcsbOracle::succLazy(const NcsbMacroState &M, Symbol Sym,
                          std::vector<State> &Out) {
  deltaFromN(M.N, Sym, NPrime, T);

  if (M.B.empty()) {
    // Rules a1-a6: like the original but with rule 5 removed -- on leaving
    // an accepting macro-state, ALL postponed guesses are made at once.
    ScratchA.clear(); // delta2(C cup S)
    for (State S : M.C.elems()) {
      assert(In.inQ2(S) && "C must stay inside Q2");
      In.A.successorsInto(S, Sym, ScratchA);
    }
    for (State S : M.S.elems()) {
      assert(In.inQ2(S) && "S must stay inside Q2");
      In.A.successorsInto(S, Sym, ScratchA);
    }
    Tmp1.assignNormalized(ScratchA);
    D.assignUnion(T, Tmp1);
    delta2Into(M.S, Sym, MustS);
    if (anyAccepting(MustS))
      return;
    acceptingInto(D, Must2); // MustC
    if (Must2.intersects(MustS))
      return;
    Tmp1.assignUnion(Must2, MustS);
    Free.assignDifference(D, Tmp1);
    ScratchNext.N = NPrime;
    enumerateSplits(Free, [&](const std::vector<State> &ToC,
                              const std::vector<State> &ToS) {
      ScratchNext.C.assignUnion(Must2, ToC);
      ScratchNext.S.assignUnion(MustS, ToS);
      ScratchNext.B = ScratchNext.C; // rule a6
      Out.push_back(Macro.internRef(ScratchNext));
    });
    return;
  }

  // Rules b1-b6: only the successors of accepting states inside B may be
  // guessed into S; C follows deterministically (rule b5).
  ScratchA.clear(); // DB = delta2(B cup S)
  for (State S : M.B.elems()) {
    assert(In.inQ2(S) && "B must stay inside Q2");
    In.A.successorsInto(S, Sym, ScratchA);
  }
  for (State S : M.S.elems()) {
    assert(In.inQ2(S) && "S must stay inside Q2");
    In.A.successorsInto(S, Sym, ScratchA);
  }
  D.assignNormalized(ScratchA); // D doubles as DB here
  delta2Into(M.S, Sym, MustS);
  if (anyAccepting(MustS))
    return; // a safe run touched an accepting state
  acceptingInto(M.B, Tmp1);          // B cap F
  Tmp2.assignDifference(M.B, Tmp1);  // B \ F
  delta2Into(Tmp2, Sym, Tmp1);       // delta2(B \ F)
  acceptingInto(D, Tmp2);            // DB cap F
  Must2.assignUnion(Tmp1, Tmp2);     // MustB
  if (Must2.intersects(MustS))
    return; // rule b3 cannot hold
  Tmp1.assignUnion(Must2, MustS);
  Free.assignDifference(D, Tmp1);
  delta2Into(M.C, Sym, Tmp1);
  CSucc.assignUnion(Tmp1, T); // delta2(C) cup T
  ScratchNext.N = NPrime;
  enumerateSplits(
      Free, [&](const std::vector<State> &ToB, const std::vector<State> &ToS) {
        ScratchNext.B.assignUnion(Must2, ToB);
        ScratchNext.S.assignUnion(MustS, ToS);
        ScratchNext.C.assignDifference(CSucc, ScratchNext.S); // rule b5
        Out.push_back(Macro.internRef(ScratchNext));
      });
}

bool NcsbOracle::subsumedBy(State Sub, State Sup) const {
  const NcsbMacroState &P = Macro[Sub];
  const NcsbMacroState &R = Macro[Sup];
  // p [= r  iff  Np supseteq Nr, Cp supseteq Cr, Sp supseteq Sr (Eq. 4);
  // the lazy variant needs the stronger [=_B with Bp supseteq Br (Eq. 5,
  // Theorem 6.4 and the Remark in Section 6.2).
  if (!P.N.supersetOf(R.N) || !P.C.supersetOf(R.C) || !P.S.supersetOf(R.S))
    return false;
  if (Variant == NcsbVariant::Lazy && !P.B.supersetOf(R.B))
    return false;
  return true;
}
