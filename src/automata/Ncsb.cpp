//===- automata/Ncsb.cpp - NCSB complementation of SDBAs ------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Ncsb.h"

#include "support/Error.h"
#include "support/FaultInjector.h"

#include <cassert>

using namespace termcheck;

NcsbOracle::NcsbOracle(const Sdba &In, NcsbVariant Variant)
    : In(In), Variant(Variant) {
  assert(In.A.isComplete() && "NCSB expects a complete SDBA");
}

State NcsbOracle::intern(NcsbMacroState M) {
  size_t H = M.hash();
  auto It = Index.find(H);
  if (It != Index.end())
    for (State S : It->second)
      if (Macro[S] == M)
        return S;
  State S = static_cast<State>(Macro.size());
  Macro.push_back(std::move(M));
  Index[H].push_back(S);
  return S;
}

std::vector<State> NcsbOracle::initialStates() {
  // (Q1 cap QI, Q2 cap QI, empty, Q2 cap QI), Definition 5.1.
  NcsbMacroState M;
  for (State S : In.A.initials().elems()) {
    if (In.inQ2(S)) {
      M.C.insert(S);
      M.B.insert(S);
    } else {
      M.N.insert(S);
    }
  }
  return {intern(std::move(M))};
}

StateSet NcsbOracle::delta2(const StateSet &X, Symbol Sym) const {
  StateSet Out;
  for (State S : X.elems()) {
    assert(In.inQ2(S) && "delta2 applies to Q2 states only");
    for (const Buchi::Arc &Arc : In.A.arcsFrom(S))
      if (Arc.Sym == Sym)
        Out.insert(Arc.To);
  }
  return Out;
}

void NcsbOracle::deltaFromN(const StateSet &N, Symbol Sym, StateSet &N1,
                            StateSet &T) const {
  for (State S : N.elems()) {
    for (const Buchi::Arc &Arc : In.A.arcsFrom(S)) {
      if (Arc.Sym != Sym)
        continue;
      if (In.inQ2(Arc.To))
        T.insert(Arc.To);
      else
        N1.insert(Arc.To);
    }
  }
}

StateSet NcsbOracle::acceptingOf(const StateSet &X) const {
  StateSet Out;
  for (State S : X.elems())
    if (In.isAccepting(S))
      Out.insert(S);
  return Out;
}

template <typename Fn>
void NcsbOracle::enumerateSplits(const StateSet &Free, Fn Emit) {
  const auto &Elems = Free.elems();
  // A free set this wide means 2^|Free| successor macro-states: not a bug
  // but an input the construction cannot afford. Raising ResourceExhausted
  // (instead of the old assert, which vanished under NDEBUG and left a
  // multi-hour loop) lets the analyzer retire this subtraction and degrade.
  if (Elems.size() > 24)
    throw EngineError(ErrorKind::ResourceExhausted,
                      "NCSB free-set explosion (" +
                          std::to_string(Elems.size()) + " states)");
  uint32_t Count = 1u << Elems.size();
  for (uint32_t Bits = 0; Bits < Count; ++Bits) {
    // 2^|Free| emissions happen between two polls of the difference
    // engine's own budget hook, so a losing portfolio configuration could
    // otherwise sit here long after the race is decided. A truncated
    // enumeration is unsound; aborted() tells the caller to discard it.
    if (pollAbort())
      return;
    StateSet ToFirst, ToSecond;
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (Bits & (1u << I))
        ToFirst.insert(Elems[I]);
      else
        ToSecond.insert(Elems[I]);
    }
    Emit(std::move(ToFirst), std::move(ToSecond));
  }
}

void NcsbOracle::successors(State S, Symbol Sym, std::vector<State> &Out) {
  FaultInjector::hit(FaultSite::NcsbSuccessor);
  // Copy: intern() may grow Macro and invalidate references.
  NcsbMacroState M = Macro[S];
  if (Variant == NcsbVariant::Original)
    succOriginal(M, Sym, Out);
  else
    succLazy(M, Sym, Out);
}

void NcsbOracle::succOriginal(const NcsbMacroState &M, Symbol Sym,
                              std::vector<State> &Out) {
  // Definition 5.1. D = delta_t(N, a) cup delta_2(C cup S, a) must be
  // partitioned into C' and S' with
  //   S' supseteq delta_2(S, a)           (rule 4)
  //   C' supseteq delta_2(C \ F, a)       (rule 5)
  //   C' supseteq D cap F                 (S' is accepting-free)
  StateSet NPrime, T;
  deltaFromN(M.N, Sym, NPrime, T);
  StateSet D = T.unionWith(delta2(M.C.unionWith(M.S), Sym));

  StateSet MustS = delta2(M.S, Sym);
  if (!acceptingOf(MustS).empty())
    return; // blocked: a safe run touched an accepting state
  StateSet MustC =
      delta2(M.C.minus(acceptingOf(M.C)), Sym).unionWith(acceptingOf(D));
  if (MustC.intersects(MustS))
    return; // blocked: rule 3 cannot hold

  StateSet Free = D.minus(MustC.unionWith(MustS));
  StateSet BSucc = M.B.empty() ? StateSet() : delta2(M.B, Sym);
  enumerateSplits(Free, [&](StateSet ToC, StateSet ToS) {
    NcsbMacroState Next;
    Next.N = NPrime;
    Next.C = MustC.unionWith(ToC);
    Next.S = MustS.unionWith(ToS);
    Next.B = M.B.empty() ? Next.C : BSucc.intersectWith(Next.C);
    Out.push_back(intern(std::move(Next)));
  });
}

void NcsbOracle::succLazy(const NcsbMacroState &M, Symbol Sym,
                          std::vector<State> &Out) {
  StateSet NPrime, T;
  deltaFromN(M.N, Sym, NPrime, T);

  if (M.B.empty()) {
    // Rules a1-a6: like the original but with rule 5 removed -- on leaving
    // an accepting macro-state, ALL postponed guesses are made at once.
    StateSet D = T.unionWith(delta2(M.C.unionWith(M.S), Sym));
    StateSet MustS = delta2(M.S, Sym);
    if (!acceptingOf(MustS).empty())
      return;
    StateSet MustC = acceptingOf(D);
    if (MustC.intersects(MustS))
      return;
    StateSet Free = D.minus(MustC.unionWith(MustS));
    enumerateSplits(Free, [&](StateSet ToC, StateSet ToS) {
      NcsbMacroState Next;
      Next.N = NPrime;
      Next.C = MustC.unionWith(ToC);
      Next.S = MustS.unionWith(ToS);
      Next.B = Next.C; // rule a6
      Out.push_back(intern(std::move(Next)));
    });
    return;
  }

  // Rules b1-b6: only the successors of accepting states inside B may be
  // guessed into S; C follows deterministically (rule b5).
  StateSet DB = delta2(M.B.unionWith(M.S), Sym);
  StateSet MustS = delta2(M.S, Sym);
  if (!acceptingOf(MustS).empty())
    return; // a safe run touched an accepting state
  StateSet MustB =
      delta2(M.B.minus(acceptingOf(M.B)), Sym).unionWith(acceptingOf(DB));
  if (MustB.intersects(MustS))
    return; // rule b3 cannot hold
  StateSet Free = DB.minus(MustB.unionWith(MustS));
  StateSet CSucc = delta2(M.C, Sym).unionWith(T);
  enumerateSplits(Free, [&](StateSet ToB, StateSet ToS) {
    NcsbMacroState Next;
    Next.N = NPrime;
    Next.B = MustB.unionWith(ToB);
    Next.S = MustS.unionWith(ToS);
    Next.C = CSucc.minus(Next.S); // rule b5
    Out.push_back(intern(std::move(Next)));
  });
}

bool NcsbOracle::subsumedBy(State Sub, State Sup) const {
  const NcsbMacroState &P = Macro[Sub];
  const NcsbMacroState &R = Macro[Sup];
  // p [= r  iff  Np supseteq Nr, Cp supseteq Cr, Sp supseteq Sr (Eq. 4);
  // the lazy variant needs the stronger [=_B with Bp supseteq Br (Eq. 5,
  // Theorem 6.4 and the Remark in Section 6.2).
  if (!P.N.supersetOf(R.N) || !P.C.supersetOf(R.C) || !P.S.supersetOf(R.S))
    return false;
  if (Variant == NcsbVariant::Lazy && !P.B.supersetOf(R.B))
    return false;
  return true;
}
