//===- automata/Ops.h - Basic automata operations -------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction-level operations on explicit GBAs: completion with a
/// rejecting sink (Section 2 assumes complete automata), restriction to a
/// state subset (used to materialize the useful part computed by
/// Algorithm 1), and the generalized product (intersection), which stacks
/// the acceptance conditions of both operands as the paper's Section 4
/// footnote prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_OPS_H
#define TERMCHECK_AUTOMATA_OPS_H

#include "automata/Buchi.h"

#include <optional>

namespace termcheck {

/// Adds a non-accepting sink state (with self-loops on every symbol) and
/// redirects every missing (state, symbol) pair to it. No-op on complete
/// automata. \returns the completed automaton.
Buchi completeWithSink(const Buchi &A);

/// \returns A restricted to \p Keep (states renumbered densely; initial
/// states and transitions outside the subset are dropped).
Buchi restrictToStates(const Buchi &A, const StateSet &Keep);

/// \returns A restricted to its reachable states.
Buchi trim(const Buchi &A);

/// Generalized product: L = L(A) and L(B), with numConditions(A) +
/// numConditions(B) acceptance conditions. Only reachable product states
/// are materialized.
Buchi intersect(const Buchi &A, const Buchi &B);

/// Drops acceptance conditions that hold in every state (they constrain
/// nothing). The program automaton A_P is all-accepting, so the repeated
/// differences of the analysis loop would otherwise accumulate one trivial
/// condition per certified module. At least one condition is kept.
Buchi dropFullConditions(const Buchi &A);

/// Degeneralization: converts a k-condition GBA into an equivalent plain BA
/// with at most (k + 1) * |Q| states (counter construction).
Buchi degeneralize(const Buchi &A);

/// Disjoint union: L = L(A) or L(B). Both operands must be plain BAs over
/// the same alphabet.
Buchi unionBa(const Buchi &A, const Buchi &B);

/// Language inclusion L(A) subseteq L(B) for a semideterministic (or
/// deterministic) B, decided through the paper's machinery: complement B
/// with NCSB (or Kurshan) and test emptiness of the on-the-fly difference.
/// \returns std::nullopt when B is not semideterministic.
std::optional<bool> isIncludedIn(const Buchi &A, const Buchi &B);

/// Language equivalence via two inclusion checks (same restriction on both
/// operands as isIncludedIn).
std::optional<bool> isEquivalent(const Buchi &A, const Buchi &B);

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_OPS_H
