//===- automata/ModularComplement.cpp - Mix-and-match complement ----------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/ModularComplement.h"

#include "automata/DbaComplement.h"
#include "automata/FiniteTraceComplement.h"
#include "automata/Ops.h"
#include "automata/PerfCounters.h"
#include "automata/RankComplement.h"
#include "support/FaultInjector.h"

#include <algorithm>

using namespace termcheck;

const char *termcheck::modularEngineName(ModularEngine E) {
  switch (E) {
  case ModularEngine::FiniteTrace:
    return "finite_trace";
  case ModularEngine::Dba:
    return "dba";
  case ModularEngine::Ncsb:
    return "ncsb";
  case ModularEngine::Rank:
    return "rank";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// The synchronized product
//===----------------------------------------------------------------------===//

uint32_t ModularComplementOracle::advance(uint32_t Layer,
                                          const std::vector<State> &Parts) {
  const uint32_t K = static_cast<uint32_t>(Components.size());
  uint32_t J = Layer >= K ? 0 : Layer;
  while (J < K && Components[J]->Oracle->isAccepting(Parts[J]))
    ++J;
  return J;
}

std::vector<State> ModularComplementOracle::initialStates() {
  const size_t K = Components.size();
  SuccLists.resize(K);
  for (size_t J = 0; J < K; ++J) {
    SuccLists[J] = Components[J]->Oracle->initialStates();
    // A component without initial macro-states has an empty complement
    // language (its module accepts everything), so the product is empty.
    if (SuccLists[J].empty())
      return {};
  }

  std::vector<State> Out;
  Odometer.assign(K, 0);
  Scratch.Parts.resize(K);
  bool More = true;
  while (More) {
    for (size_t J = 0; J < K; ++J)
      Scratch.Parts[J] = SuccLists[J][Odometer[J]];
    Scratch.Layer = advance(static_cast<uint32_t>(K), Scratch.Parts);
    Out.push_back(Tuples.internRef(Scratch));
    More = false;
    for (size_t J = K; J-- > 0;) {
      if (++Odometer[J] < SuccLists[J].size()) {
        More = true;
        break;
      }
      Odometer[J] = 0;
    }
  }
  return Out;
}

void ModularComplementOracle::successors(State S, Symbol Sym,
                                         std::vector<State> &Out) {
  FaultInjector::hit(FaultSite::ModularExpand);
  if (pollAbort())
    return;

  const ModularMacroState &M = Tuples[S]; // arena reference: stable
  const size_t K = Components.size();
  SuccLists.resize(K);
  for (size_t J = 0; J < K; ++J) {
    SuccLists[J].clear();
    Components[J]->Oracle->successors(M.Parts[J], Sym, SuccLists[J]);
    if (Components[J]->Oracle->aborted()) {
      // A truncated component successor list poisons every tuple built
      // from it; surface the truncation as our own so the difference
      // engine discards the whole construction.
      markAborted();
      return;
    }
    if (SuccLists[J].empty())
      return; // the product run dies
  }

  Odometer.assign(K, 0);
  Scratch.Parts.resize(K);
  bool More = true;
  while (More) {
    if (pollAbort())
      return;
    for (size_t J = 0; J < K; ++J)
      Scratch.Parts[J] = SuccLists[J][Odometer[J]];
    Scratch.Layer = advance(M.Layer, Scratch.Parts);
    Out.push_back(Tuples.internRef(Scratch));
    More = false;
    for (size_t J = K; J-- > 0;) {
      if (++Odometer[J] < SuccLists[J].size()) {
        More = true;
        break;
      }
      Odometer[J] = 0;
    }
  }
}

size_t ModularComplementOracle::numStatesDiscovered() const {
  size_t N = Tuples.size();
  for (const auto &C : Components)
    N += C->Oracle->numStatesDiscovered();
  return N;
}

bool ModularComplementOracle::subsumedBy(State Sub, State Sup) const {
  // L(tuple) = intersection of the component languages, whatever the
  // counter layer, so component-wise subsumption implies tuple-language
  // inclusion and the layer can be ignored.
  const ModularMacroState &A = Tuples[Sub], &B = Tuples[Sup];
  for (size_t J = 0; J < Components.size(); ++J)
    if (!Components[J]->Oracle->subsumedBy(A.Parts[J], B.Parts[J]))
      return false;
  return true;
}

void ModularComplementOracle::setPollStride(uint32_t Stride) {
  ComplementOracle::setPollStride(Stride);
  for (auto &C : Components)
    C->Oracle->setPollStride(Stride);
}

//===----------------------------------------------------------------------===//
// The builder
//===----------------------------------------------------------------------===//

std::unique_ptr<ModularComplementOracle>
termcheck::buildModularComplement(const Buchi &A,
                                  const ModularBuildOptions &Opts) {
  if (A.numConditions() != 1)
    return nullptr;

  SccClassification Cls = classifySccs(A);
  const State N = A.numStates();

  std::unique_ptr<ModularComplementOracle> Oracle(
      new ModularComplementOracle(A.numSymbols()));

  // Reverse adjacency for the co-reachability cuts.
  std::vector<std::vector<State>> Preds(N);
  for (State S = 0; S < N; ++S)
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Preds[Arc.To].push_back(S);

  // Builds one partial complement for the SCC group \p CompIds (all of
  // class \p Class) and appends it to the oracle. \returns false when no
  // engine fits the group (the caller then splits it); a group whose
  // trapped language is empty is skipped and counts as success.
  auto addComponent = [&](const std::vector<uint32_t> &CompIds,
                          SccClass Class) -> bool {
    auto InGroup = [&](State S) {
      int32_t C = Cls.D.CompOf[S];
      return C >= 0 && std::find(CompIds.begin(), CompIds.end(),
                                 static_cast<uint32_t>(C)) != CompIds.end();
    };

    // Co-reach cut: states from which some accepting state of the group
    // is still reachable. Runs that leave the cut can never be accepting
    // runs trapped in the group, so dropping them preserves the trapped
    // language -- and prunes everything downstream of the group's SCCs.
    std::vector<uint8_t> IsTarget(N, 0), InCo(N, 0);
    std::vector<State> Work;
    for (State S = 0; S < N; ++S)
      if (A.acceptMask(S) != 0 && InGroup(S)) {
        IsTarget[S] = 1;
        InCo[S] = 1;
        Work.push_back(S);
      }
    while (!Work.empty()) {
      State S = Work.back();
      Work.pop_back();
      for (State P : Preds[S])
        if (!InCo[P]) {
          InCo[P] = 1;
          Work.push_back(P);
        }
    }

    bool AnyInit = false;
    for (State I : A.initials().elems())
      AnyInit |= InCo[I] != 0;
    if (!AnyInit)
      return true; // trapped language empty: nothing to intersect with

    constexpr State NoState = ~State(0);
    std::vector<State> Map(N, NoState);
    Buchi Partial(A.numSymbols(), 1);
    State Universal = 0;

    if (Class == SccClass::InertWeak) {
      // Collapse the group's SCCs into one universal accepting state: the
      // SCCs are closed, internally complete, and inherently weak, so any
      // run entering one accepts whatever the suffix follows -- exactly
      // the finite-trace shape Pref . Sigma^omega.
      Universal = Partial.addState();
      Partial.setAccepting(Universal);
      for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym)
        Partial.addTransition(Universal, Sym, Universal);
      for (State S = 0; S < N; ++S)
        if (InCo[S])
          Map[S] = InGroup(S) ? Universal : Partial.addState();
      for (State S = 0; S < N; ++S) {
        if (!InCo[S] || InGroup(S))
          continue;
        for (const Buchi::Arc &Arc : A.arcsFrom(S))
          if (InCo[Arc.To])
            Partial.addTransition(Map[S], Arc.Sym, Map[Arc.To]);
      }
    } else {
      for (State S = 0; S < N; ++S)
        if (InCo[S])
          Map[S] = Partial.addState();
      for (State S = 0; S < N; ++S) {
        if (!InCo[S])
          continue;
        if (IsTarget[S])
          Partial.setAccepting(Map[S]);
        for (const Buchi::Arc &Arc : A.arcsFrom(S))
          if (InCo[Arc.To])
            Partial.addTransition(Map[S], Arc.Sym, Map[Arc.To]);
      }
    }
    for (State I : A.initials().elems())
      if (InCo[I])
        Partial.addInitial(Map[I]);

    // Uniform engine resolution: finite-trace (inert-weak collapse only),
    // then DBA, then NCSB, then rank. Deterministic groups always pass
    // step 2 or 3; semideterministic single SCCs always pass step 3 (the
    // co-reach cut leaves no nondeterministic state downstream of the
    // SCC's accepting states).
    auto P = std::make_unique<ModularComplementOracle::Part>(
        std::move(Partial));
    P->Class = Class;
    if (Class == SccClass::InertWeak) {
      P->Engine = ModularEngine::FiniteTrace;
      P->Oracle =
          std::make_unique<FiniteTraceComplementOracle>(P->Partial, Universal);
    } else {
      Buchi Complete = completeWithSink(P->Partial);
      if (Complete.isDeterministic()) {
        P->Engine = ModularEngine::Dba;
        P->Partial = std::move(Complete);
        P->Oracle = std::make_unique<DbaComplementOracle>(P->Partial);
      } else if (auto Sd = prepareSdba(P->Partial)) {
        P->Engine = ModularEngine::Ncsb;
        P->Prepared.emplace(std::move(*Sd));
        P->Oracle = std::make_unique<NcsbOracle>(*P->Prepared, Opts.Ncsb);
      } else if (Complete.numStates() <= RankComplementOracle::MaxInputStates) {
        P->Engine = ModularEngine::Rank;
        P->Partial = std::move(Complete);
        P->Oracle = std::make_unique<RankComplementOracle>(P->Partial);
      } else {
        return false;
      }
    }

    // The component polls the product's hook dynamically: difference()
    // installs ShouldAbort only after construction.
    ModularComplementOracle *Self = Oracle.get();
    P->Oracle->ShouldAbort = [Self] {
      return Self->ShouldAbort && Self->ShouldAbort();
    };
    Oracle->Info.push_back({Class, P->Engine,
                            P->Engine == ModularEngine::Ncsb
                                ? P->Prepared->A.numStates()
                                : P->Partial.numStates()});
    Oracle->Components.push_back(std::move(P));
    return true;
  };

  constexpr SccClass Order[] = {SccClass::InertWeak, SccClass::Deterministic,
                                SccClass::Semideterministic,
                                SccClass::General};
  for (SccClass Class : Order) {
    std::vector<uint32_t> Comps = Cls.componentsOf(Class);
    if (Comps.empty())
      continue;
    if (addComponent(Comps, Class))
      continue;
    // The grouped automaton missed the engine precondition (addComponent
    // appends nothing in that case); retry one SCC at a time.
    if (Comps.size() == 1)
      return nullptr;
    for (uint32_t One : Comps)
      if (!addComponent({One}, Class))
        return nullptr;
  }

  perf::Counters &PC = perf::local();
  ++PC.ModularBuilds;
  PC.ModularComponents += Oracle->Components.size();
  for (const ModularComponentInfo &I : Oracle->Info)
    PC.ModularCheapComponents += I.Engine != ModularEngine::Rank;
  return Oracle;
}
