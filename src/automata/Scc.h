//===- automata/Scc.h - SCC-based emptiness and Algorithm 1 ---*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SCC machinery of Section 4:
///
/// * GbaSource -- an implicitly-given GBA ("Algorithm 1 is amenable to
///   on-the-fly traversal of the automaton A, i.e., A can be provided
///   implicitly"). Product-with-complement automata implement this
///   interface so the complement is only built where the product visits it.
/// * UselessStateRemover -- Algorithm 1 of the paper: the Gaiser-Schwoon /
///   Couvreur emptiness check modified to classify every visited state as
///   useful (nonempty language) or useless, with pluggable emp-set hooks so
///   Section 6's subsumption closure (the antichain) can replace exact
///   membership.
/// * isEmpty / findAcceptingLasso -- emptiness and ultimately periodic
///   counterexample extraction for explicit GBAs.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_SCC_H
#define TERMCHECK_AUTOMATA_SCC_H

#include "automata/Buchi.h"

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

namespace termcheck {

/// An implicitly represented GBA traversed on the fly. Implementations hand
/// out dense state ids of their own choosing.
class GbaSource {
public:
  virtual ~GbaSource() = default;

  /// Bitmask covering every acceptance condition.
  virtual uint64_t fullMask() const = 0;

  /// The initial states (deterministic order).
  virtual std::vector<State> initialStates() = 0;

  /// The acceptance-condition mask of \p S.
  virtual uint64_t acceptMask(State S) = 0;

  /// Appends every arc of \p S to \p Out (deterministic order).
  virtual void arcs(State S, std::vector<Buchi::Arc> &Out) = 0;
};

/// GbaSource view of an explicit automaton.
class ExplicitGbaSource : public GbaSource {
public:
  explicit ExplicitGbaSource(const Buchi &A) : A(A) {}

  uint64_t fullMask() const override { return A.fullMask(); }
  std::vector<State> initialStates() override {
    return A.initials().elems();
  }
  uint64_t acceptMask(State S) override { return A.acceptMask(S); }
  void arcs(State S, std::vector<Buchi::Arc> &Out) override {
    const auto &Arcs = A.arcsFrom(S);
    Out.insert(Out.end(), Arcs.begin(), Arcs.end());
  }

private:
  const Buchi &A;
};

/// Outcome of running Algorithm 1.
struct RemoveUselessResult {
  /// Source ids of states proved useful, in classification order.
  std::vector<State> Useful;
  /// True when no initial state is useful (the language is empty).
  bool LanguageEmpty = true;
  /// Number of distinct states whose successors were expanded.
  size_t StatesExplored = 0;
  /// True when the run was cut short by the ShouldAbort hook; the
  /// classification is then partial and LanguageEmpty unreliable.
  bool Aborted = false;
};

/// Algorithm 1: classify reachable states of a GbaSource as useful/useless.
///
/// The emp set is externalized through two hooks so the difference engine
/// can maintain it as a subsumption antichain (Section 6):
///   IsKnownUseless(q) implements the test `q in CEIL(emp)`;
///   AddUseless(q)     implements `emp.add(q)`.
/// When the hooks are unset an exact hash set is used.
class UselessStateRemover {
public:
  std::function<bool(State)> IsKnownUseless;
  std::function<void(State)> AddUseless;

  /// When true, stop as soon as one accepting SCC is found (this restores
  /// the plain Gaiser-Schwoon emptiness test; the Useful classification is
  /// then partial).
  bool StopAtFirstAccepting = false;

  /// Optional budget hook, polled every PollStride expansions; returning
  /// true aborts the run (Result.Aborted is set).
  std::function<bool()> ShouldAbort;

  /// Expansions between two ShouldAbort evaluations. The default suits
  /// wall-clock hooks; budget enforcement (state caps, resource guards)
  /// lowers it so small constructions cannot dodge the cap between polls.
  uint32_t PollStride = 256;

  RemoveUselessResult run(GbaSource &Src);
};

/// \returns true iff L(A) is empty (Gaiser-Schwoon over the explicit GBA).
bool isEmpty(const Buchi &A);

/// Tarjan SCC decomposition of the reachable part of an explicit GBA.
/// Component ids are assigned in reverse topological completion order
/// (every arc between distinct components goes from a higher id to a
/// lower one). Unreachable states carry component id -1.
struct SccDecomposition {
  std::vector<int32_t> CompOf; ///< per state; -1 for unreachable
  uint32_t NumComps = 0;

  /// \returns true when \p S and \p T share a (reachable) component.
  bool sameComponent(State S, State T) const {
    return CompOf[S] >= 0 && CompOf[S] == CompOf[T];
  }
};

/// Runs Tarjan's algorithm from the initial states of \p A.
SccDecomposition sccDecompose(const Buchi &A);

/// An ultimately periodic word u v^omega.
struct LassoWord {
  std::vector<Symbol> Stem;
  std::vector<Symbol> Loop; // nonempty

  std::string str() const;
};

/// Finds an accepting lasso of the GBA, preferring short stems.
/// \returns std::nullopt when the language is empty.
std::optional<LassoWord> findAcceptingLasso(const Buchi &A);

/// Ultimately periodic membership: \returns true iff A accepts
/// Stem . Loop^omega. \p W.Loop must be nonempty.
bool acceptsLasso(const Buchi &A, const LassoWord &W);

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_SCC_H
