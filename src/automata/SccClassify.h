//===- automata/SccClassify.h - Accepting-SCC classification --*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decomposition step of modular ("mix-and-match") complementation
/// (Havlena/Lengal et al., PAPERS.md): every accepting run of a BA is
/// eventually trapped in exactly one accepting SCC, so L(A) splits into the
/// union over accepting SCCs D of "words with an accepting run trapped in
/// D", and the complement into the intersection of the per-SCC partial
/// complements. Each accepting SCC is classified by the cheapest
/// complementation construction that fits it:
///
///  * InertWeak        -- the SCC is closed (no arc leaves it), internally
///                        complete (every state has a successor on every
///                        symbol), and inherently weak accepting (no cycle
///                        avoids the accepting set). Every run that enters
///                        such an SCC accepts whatever the suffix, so the
///                        trapped language is Pref . Sigma^omega and the
///                        finite-trace subset complement applies.
///  * Deterministic    -- the SCC and everything reachable from it is
///                        deterministic; Kurshan's DBA complement applies
///                        when the prefix part is deterministic too.
///  * Semideterministic-- the SCC's internal transition structure is
///                        deterministic (at most one in-SCC successor per
///                        state and symbol). Restricted to states that can
///                        still reach the SCC's accepting states, the
///                        partial automaton is an SDBA and NCSB applies.
///  * General          -- anything else; only the rank-based construction
///                        is known to fit.
///
/// Non-accepting SCCs (trivial ones, and those without an accepting state)
/// are labeled NonAccepting and never get a partial complement.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_SCCCLASSIFY_H
#define TERMCHECK_AUTOMATA_SCCCLASSIFY_H

#include "automata/Scc.h"

namespace termcheck {

/// The modular-complementation class of one SCC.
enum class SccClass : uint8_t {
  NonAccepting,      ///< trivial, or no accepting state: never traps a run
  InertWeak,         ///< closed + complete + inherently weak accepting
  Deterministic,     ///< SCC and its downstream closure deterministic
  Semideterministic, ///< SCC internally deterministic
  General,           ///< everything else (rank territory)
};

/// \returns a stable lowercase name (statistics, traces, tests).
const char *sccClassName(SccClass C);

/// The decomposition plus per-component class labels.
struct SccClassification {
  SccDecomposition D;
  /// Class of every component, indexed by component id.
  std::vector<SccClass> ClassOf;

  /// Component ids of one class, in increasing id order.
  std::vector<uint32_t> componentsOf(SccClass C) const {
    std::vector<uint32_t> Out;
    for (uint32_t I = 0; I < D.NumComps; ++I)
      if (ClassOf[I] == C)
        Out.push_back(I);
    return Out;
  }

  /// Number of accepting (non-NonAccepting) components.
  size_t numAcceptingComponents() const {
    size_t N = 0;
    for (SccClass C : ClassOf)
      N += C != SccClass::NonAccepting;
    return N;
  }
};

/// Classifies the reachable SCCs of \p A (one acceptance condition).
/// Classes are disjoint and exhaustive by construction: every reachable
/// component gets exactly one label, checked in the order InertWeak ->
/// Deterministic -> Semideterministic -> General.
SccClassification classifySccs(const Buchi &A);

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_SCCCLASSIFY_H
