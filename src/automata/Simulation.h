//===- automata/Simulation.h - Early simulations (Section 6.1) -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The early and early+1 simulation relations of Section 6.1. Intuitively,
/// early+1 simulation requires that between every two accepting visits of
/// the simulated trace the simulating trace also visits an accepting
/// state; early simulation additionally requires the simulating trace to
/// reach its first accepting state no later. Proposition 6.1:
///
///    early  subseteq  early+1  subseteq  language inclusion,
///
/// which is what makes the subsumption relations of Section 6 sound --
/// Lemma 6.2 shows they are instances of these simulations.
///
/// The relations are computed as the winning region of a two-player game
/// with one bit of memory (an "open obligation window"); game-based
/// winning strategies are positional, so this computes a (sound)
/// under-approximation of the trace-based definition, which in turn
/// under-approximates language inclusion.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_SIMULATION_H
#define TERMCHECK_AUTOMATA_SIMULATION_H

#include "automata/Buchi.h"

#include <functional>

namespace termcheck {

/// Which simulation of Section 6.1 to compute.
enum class SimulationKind : uint8_t {
  Early,     ///< Eq. 11: windows start open (the i = -1 clause)
  EarlyPlus1 ///< Eq. 12: windows open at the spoiler's first accepting visit
};

/// A computed simulation preorder over the states of one BA.
class SimulationRelation {
public:
  /// \returns true when \p P is simulated by \p R.
  bool simulates(State P, State R) const {
    return Rel[static_cast<size_t>(P) * N + R] != 0;
  }

  /// Number of related pairs (diagonal included).
  size_t pairCount() const;

  /// True when the computation was cut short by a budget hook; the
  /// relation is then a partial over-approximation and must not be used.
  bool Aborted = false;

private:
  friend SimulationRelation computeEarlySimulation(const Buchi &A,
                                                   SimulationKind Kind);
  friend SimulationRelation
  computeDirectSimulation(const Buchi &A,
                          const std::function<bool()> &ShouldAbort);
  size_t N = 0;
  std::vector<uint8_t> Rel; // row-major [p][r]; bytes, not bits -- the
                            // refinement loop is random-access bound
};

/// Computes the early / early+1 simulation preorder of \p A (one
/// acceptance condition; the automaton need not be complete -- a spoiler
/// move the duplicator cannot match loses).
SimulationRelation computeEarlySimulation(const Buchi &A, SimulationKind Kind);

/// Computes the classical direct (strong) simulation preorder: p is
/// simulated by r when r covers p's acceptance marks and can match every
/// move forever. Works for generalized acceptance (mask containment).
/// \p ShouldAbort is polled once per refinement row; on abort the result
/// has Aborted set and must be discarded.
SimulationRelation
computeDirectSimulation(const Buchi &A,
                        const std::function<bool()> &ShouldAbort = {});

/// Quotients \p A by direct-simulation equivalence (mutual simulation), a
/// language-preserving reduction usable as preprocessing before
/// complementation. \returns the reduced automaton.
///
/// The fixpoint refinement is the one phase of the analysis loop whose
/// cost is quadratic in the remaining automaton, so it honors the same
/// budget hook as the difference engine: when \p ShouldAbort fires
/// mid-refinement the quotient is skipped and \p A is returned unchanged
/// (the reduction is only an optimization, so this is always sound).
Buchi quotientByDirectSimulation(const Buchi &A,
                                 const std::function<bool()> &ShouldAbort = {});

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_SIMULATION_H
