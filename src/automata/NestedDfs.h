//===- automata/NestedDfs.h - CVWY nested-DFS emptiness -------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic nested depth-first search emptiness check of Courcoubetis,
/// Vardi, Wolper and Yannakakis for plain Büchi automata. The paper's
/// Algorithm 1 builds on the SCC-based Gaiser-Schwoon algorithm instead --
/// Gaiser & Schwoon's own paper [26] is a comparison of exactly these two
/// families -- so this implementation serves as an independent oracle for
/// the test suite and as an ablation point in the microbenchmarks.
///
/// Unlike Algorithm 1, nested DFS answers only emptiness (it cannot
/// classify useless states), and it needs a degeneralized (single
/// acceptance set) automaton.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_NESTEDDFS_H
#define TERMCHECK_AUTOMATA_NESTEDDFS_H

#include "automata/Buchi.h"
#include "automata/Scc.h"

#include <optional>

namespace termcheck {

/// \returns true iff L(A) is empty. \p A must have one acceptance
/// condition (degeneralize first for GBAs).
bool isEmptyNestedDfs(const Buchi &A);

/// Nested-DFS emptiness with counterexample extraction: \returns an
/// accepting lasso when the language is nonempty.
std::optional<LassoWord> findLassoNestedDfs(const Buchi &A);

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_NESTEDDFS_H
