//===- automata/Difference.cpp - On-the-fly GBA \ BA difference ----------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Difference.h"

#include "automata/CouvreurEmptiness.h"
#include "automata/Interner.h"
#include "automata/PerfCounters.h"
#include "support/FaultInjector.h"
#include "support/Trace.h"

#include <cassert>

using namespace termcheck;

namespace {

/// The on-the-fly product A x B-bar as a GbaSource. Product states are
/// interned (aState, cState) pairs; arcs are memoized because Algorithm 1
/// asks for them once per expansion and the materialization step asks
/// again. Both the pair index and the arc memo are flat, state-indexed
/// structures: product ids are dense, so a hash map per lookup is pure
/// overhead on this hot path.
class ProductSource : public GbaSource {
public:
  ProductSource(const Buchi &A, ComplementOracle &BC) : A(A), BC(BC) {
    A.ensureIndex(); // arcsFrom below wants the deduped arc lists
  }

  uint64_t fullMask() const override {
    return (A.fullMask() << 1) | 1; // bit 0: complement acceptance
  }

  std::vector<State> initialStates() override {
    std::vector<State> Out;
    for (State P : A.initials().elems())
      for (State Q : BC.initialStates())
        Out.push_back(intern(P, Q));
    return Out;
  }

  uint64_t acceptMask(State S) override {
    auto [P, Q] = Pairs.get(S);
    return (A.acceptMask(P) << 1) | (BC.isAccepting(Q) ? 1 : 0);
  }

  void arcs(State S, std::vector<Buchi::Arc> &Out) override {
    if (S < ArcCached.size() && ArcCached[S]) {
      const std::vector<Buchi::Arc> &Hit = ArcCache[S];
      Out.insert(Out.end(), Hit.begin(), Hit.end());
      return;
    }
    FaultInjector::hit(FaultSite::DifferenceExpand);
    std::vector<Buchi::Arc> Arcs;
    auto [P, Q] = Pairs.get(S);
    for (const Buchi::Arc &ArcA : A.arcsFrom(P)) {
      SuccBuf.clear();
      BC.successors(Q, ArcA.Sym, SuccBuf);
      for (State CTo : SuccBuf)
        Arcs.push_back({ArcA.Sym, intern(ArcA.To, CTo)});
    }
    Out.insert(Out.end(), Arcs.begin(), Arcs.end());
    // intern() above may have discovered fresh states; size the memo after.
    if (ArcCache.size() < Pairs.size()) {
      ArcCache.resize(Pairs.size());
      ArcCached.resize(Pairs.size(), false);
    }
    MemoizedArcs += Arcs.size();
    perf::local().ArcsMemoized += Arcs.size();
    ArcCache[S] = std::move(Arcs);
    ArcCached[S] = true;
  }

  /// Decodes a product id.
  std::pair<State, State> decode(State S) const { return Pairs.get(S); }

  size_t numProductStates() const { return Pairs.size(); }
  size_t numArcsMemoized() const { return MemoizedArcs; }

private:
  const Buchi &A;
  ComplementOracle &BC;
  PairInterner Pairs;
  std::vector<std::vector<Buchi::Arc>> ArcCache;
  std::vector<bool> ArcCached;
  std::vector<State> SuccBuf; // scratch for one oracle successor query
  size_t MemoizedArcs = 0;

  State intern(State P, State Q) { return Pairs.intern(P, Q).first; }
};

} // namespace

DifferenceResult termcheck::difference(const Buchi &A, ComplementOracle &BC,
                                       const DifferenceOptions &Opts) {
  assert(A.numSymbols() == BC.numSymbols() && "alphabet mismatch");
  assert(A.numConditions() + 1 <= 64 && "too many acceptance conditions");

  ProductSource Src(A, BC);
  UselessStateRemover Remover;
  // Fold every budget into one hook: the caller's sticky deadline /
  // cancellation, the per-construction state cap, and the shared resource
  // guard. Cap trips are remembered separately so the caller can tell
  // "this construction was too big" (degradable) from "the whole run is
  // over" (sticky).
  bool CapHit = false;
  std::function<bool()> Hook;
  if (Opts.ShouldAbort || Opts.MaxProductStates != 0 || Opts.Guard) {
    size_t Cap = Opts.MaxProductStates;
    ResourceGuard *Guard = Opts.Guard;
    Hook = [&Src, &BC, &CapHit, Cap, Guard,
            Outer = Opts.ShouldAbort]() -> bool {
      size_t Live = Src.numProductStates() + BC.numStatesDiscovered();
      if (Cap != 0 && Live > Cap) {
        CapHit = true;
        return true;
      }
      if (Guard) {
        if (Guard->exhausted())
          return true;
        if (Guard->wouldExceed(Live)) {
          CapHit = true;
          return true;
        }
      }
      return Outer && Outer();
    };
  }
  Remover.ShouldAbort = Hook;
  // Thread the budget into the oracle too: one product expansion can hide
  // an exponential NCSB split enumeration, and the remover only polls
  // between expansions.
  BC.ShouldAbort = Hook;
  // State budgets need prompt polls: with the default 256-call stride a
  // small construction finishes (or overshoots the cap by hundreds of
  // states) before the first evaluation. Pure wall-clock/cancellation
  // hooks keep the cheap sparse stride.
  if (Opts.MaxProductStates != 0 || Opts.Guard) {
    Remover.PollStride = 8;
    BC.setPollStride(8);
  }

  // emp as a per-A-state antichain of complement macro-states, compared
  // with the oracle's subsumption relation (Section 6, Eq. 10). Without
  // subsumption the oracle relation degrades to equality, which makes this
  // an exact set. A states are dense, so the per-state chains live in a
  // flat vector instead of a hash map.
  std::vector<std::vector<State>> Emp;
  size_t SubsumptionPruned = 0;
  if (Opts.UseSubsumption) {
    Emp.resize(A.numStates());
    Remover.IsKnownUseless = [&](State S) {
      auto [P, Q] = Src.decode(S);
      for (State R : Emp[P])
        if (BC.subsumedBy(Q, R)) {
          ++SubsumptionPruned;
          return true;
        }
      return false;
    };
    Remover.AddUseless = [&](State S) {
      auto [P, Q] = Src.decode(S);
      std::vector<State> &Chain = Emp[P];
      // Keep only subsumption-maximal elements ("emp can be maintained in
      // the form of an antichain", Section 6).
      for (State R : Chain)
        if (BC.subsumedBy(Q, R))
          return;
      size_t Keep = 0;
      for (size_t I = 0; I < Chain.size(); ++I)
        if (!BC.subsumedBy(Chain[I], Q))
          Chain[Keep++] = Chain[I];
      Chain.resize(Keep);
      Chain.push_back(Q);
    };
  }

  DifferenceResult Out{Buchi(A.numSymbols(), A.numConditions() + 1)};
  // A guard that is already exhausted (earlier subtraction, another
  // portfolio entrant) stops the construction before any work: the sticky
  // trip is run-level, not a per-construction cap.
  if (Opts.Guard && Opts.Guard->exhausted()) {
    Out.Aborted = true;
    return Out;
  }

  auto ChargeGuard = [&] {
    if (Opts.Guard)
      Opts.Guard->chargeStates(Out.ProductStatesExplored +
                               Out.ComplementStatesDiscovered);
  };

  const bool WantCouvreur =
      Opts.Emptiness == EmptinessStrategy::Couvreur ||
      (Opts.Emptiness == EmptinessStrategy::Auto && Opts.EmptinessOnly);

  if (WantCouvreur) {
    // The Couvreur/Tarjan engine answers emptiness first. When the
    // difference is empty this replaces Algorithm 1 AND the
    // materialization; when it is nonempty and the caller wants the
    // automaton, Algorithm 1 below re-runs over the warm arc memo.
    TraceSpan Span(Opts.Tracer, "emptiness.couvreur");
    EmptinessOptions EO;
    EO.ShouldAbort = Hook;
    EO.PollStride = Remover.PollStride;
    EO.FindWitness = Opts.WantWitness;
    // The pre-pass keeps a PRIVATE antichain (per A state, like the
    // remover's): entries added under a provisionally justified on-stack
    // prune are discarded through ResetKnownEmpty on a cutoff restart, and
    // must never leak into the remover's own antichain.
    std::vector<std::vector<State>> Emp2;
    if (Opts.UseSubsumption) {
      EO.SubsumedBy = [&Src, &BC](State Sub, State Sup) {
        if (Sub == Sup)
          return true; // syntactic fast path
        auto [PA, QA] = Src.decode(Sub);
        auto [PB, QB] = Src.decode(Sup);
        return PA == PB && (QA == QB || BC.subsumedBy(QA, QB));
      };
      // The on-stack cutoff needs an EARLY relation (DESIGN.md section
      // 17); the oracle knows whether its preorder qualifies.
      EO.SubsumptionIsEarly = BC.subsumptionIsEarly();
      Emp2.resize(A.numStates());
      EO.IsKnownEmpty = [&Src, &BC, &Emp2](State S) {
        auto [P, Q] = Src.decode(S);
        for (State R : Emp2[P])
          if (BC.subsumedBy(Q, R))
            return true;
        return false;
      };
      EO.AddKnownEmpty = [&Src, &BC, &Emp2](State S) {
        auto [P, Q] = Src.decode(S);
        std::vector<State> &Chain = Emp2[P];
        for (State R : Chain)
          if (BC.subsumedBy(Q, R))
            return;
        size_t Keep = 0;
        for (size_t I = 0; I < Chain.size(); ++I)
          if (!BC.subsumedBy(Chain[I], Q))
            Chain[Keep++] = Chain[I];
        Chain.resize(Keep);
        Chain.push_back(Q);
      };
      EO.ResetKnownEmpty = [&Emp2] {
        for (std::vector<State> &Chain : Emp2)
          Chain.clear();
      };
    }

    CouvreurEmptiness Engine;
    EmptinessResult ER = Engine.check(Src, EO);
    Out.EmptinessEngine = Engine.name();
    Out.CouvreurSccs = ER.SccsClosed;
    Out.CouvreurCutoffs = ER.OnStackCutoffs + ER.ClosedCutoffs;
    Out.ProductStatesExplored = ER.StatesExplored;
    Out.ComplementStatesDiscovered = BC.numStatesDiscovered();
    Out.SubsumptionPruned = ER.ClosedCutoffs;
    Out.ArcsMemoized = Src.numArcsMemoized();
    Out.Aborted = ER.Aborted || BC.aborted();
    Out.HitStateCap = CapHit;
    if (Out.Aborted)
      return Out;
    Out.IsEmpty = ER.IsEmpty;
    Out.Witness = std::move(ER.Witness);
    if (ER.IsEmpty || Opts.EmptinessOnly) {
      ChargeGuard();
      return Out;
    }
    // Nonempty and the caller needs the materialized difference: fall
    // through to Algorithm 1.
  } else if (Opts.EmptinessOnly) {
    GaiserSchwoonEmptiness Engine;
    EmptinessOptions EO;
    EO.ShouldAbort = Hook;
    EO.PollStride = Remover.PollStride;
    EO.IsKnownEmpty = Remover.IsKnownUseless;
    EO.AddKnownEmpty = Remover.AddUseless;
    EO.FindWitness = Opts.WantWitness;
    EmptinessResult ER = Engine.check(Src, EO);
    Out.EmptinessEngine = Engine.name();
    Out.IsEmpty = ER.IsEmpty;
    Out.ProductStatesExplored = ER.StatesExplored;
    Out.ComplementStatesDiscovered = BC.numStatesDiscovered();
    Out.SubsumptionPruned = SubsumptionPruned;
    Out.ArcsMemoized = Src.numArcsMemoized();
    Out.Aborted = ER.Aborted || BC.aborted();
    Out.HitStateCap = CapHit;
    if (Out.Aborted)
      return Out;
    Out.Witness = std::move(ER.Witness);
    ChargeGuard();
    return Out;
  }

  RemoveUselessResult R = Remover.run(Src);
  Out.IsEmpty = R.LanguageEmpty;
  Out.ProductStatesExplored = R.StatesExplored;
  Out.ComplementStatesDiscovered = BC.numStatesDiscovered();
  Out.SubsumptionPruned = SubsumptionPruned;
  Out.ArcsMemoized = Src.numArcsMemoized();
  // An oracle-side abort truncated some successor list, so the search saw
  // an under-approximated product; the classification is as invalid as a
  // remover-side abort.
  Out.Aborted = R.Aborted || BC.aborted();
  Out.HitStateCap = CapHit;
  if (Out.Aborted)
    return Out;

  // Materialize the useful part. Product condition bit 0 is the
  // complement's; shift A's conditions up by one to match acceptMask().
  // Product ids are dense, so the useful->fresh map is a flat vector with
  // a sentinel for dropped states.
  constexpr State NotUseful = ~State(0);
  std::vector<State> Map(Src.numProductStates(), NotUseful);
  for (State S : R.Useful) {
    State Fresh = Out.D.addState();
    Out.D.setAcceptMask(Fresh, Src.acceptMask(S));
    Map[S] = Fresh;
  }
  std::vector<Buchi::Arc> Buf;
  uint32_t PollCountdown = 256;
  for (State S : R.Useful) {
    if (Hook && --PollCountdown == 0) {
      PollCountdown = 256;
      if (Hook()) {
        Out.Aborted = true;
        Out.HitStateCap = CapHit;
        return Out;
      }
    }
    Buf.clear();
    Src.arcs(S, Buf);
    for (const Buchi::Arc &Arc : Buf)
      if (Arc.To < Map.size() && Map[Arc.To] != NotUseful)
        Out.D.addTransition(Map[S], Arc.Sym, Map[Arc.To]);
  }
  for (State S : Src.initialStates()) {
    if (Map[S] != NotUseful)
      Out.D.addInitial(Map[S]);
  }
  Out.ArcsMemoized = Src.numArcsMemoized();
  // Only completed constructions are charged: an aborted one frees its
  // states on return, and charging it would double-bill retries.
  if (Opts.Guard)
    Opts.Guard->chargeStates(Out.ProductStatesExplored +
                             Out.ComplementStatesDiscovered);
  return Out;
}
