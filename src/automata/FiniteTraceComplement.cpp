//===- automata/FiniteTraceComplement.cpp - Prefix complement ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/FiniteTraceComplement.h"

#include <cassert>

using namespace termcheck;

FiniteTraceComplementOracle::FiniteTraceComplementOracle(const Buchi &A,
                                                         State Universal)
    : A(A), Universal(Universal) {
  assert(Universal < A.numStates() && "unknown universal state");
  assert(A.acceptMask(Universal) != 0 && "universal state must accept");
}

State FiniteTraceComplementOracle::intern(StateSet S) {
  size_t H = S.hash();
  auto It = Index.find(H);
  if (It != Index.end())
    for (State Id : It->second)
      if (Subsets[Id] == S)
        return Id;
  State Id = static_cast<State>(Subsets.size());
  Subsets.push_back(std::move(S));
  Index[H].push_back(Id);
  return Id;
}

std::vector<State> FiniteTraceComplementOracle::initialStates() {
  StateSet Init;
  for (State S : A.initials().elems())
    Init.insert(S);
  if (Init.contains(Universal))
    return {}; // the module accepts everything; its complement is empty
  return {intern(std::move(Init))};
}

void FiniteTraceComplementOracle::successors(State S, Symbol Sym,
                                             std::vector<State> &Out) {
  StateSet Next;
  for (State Q : Subsets[S].elems())
    for (const Buchi::Arc &Arc : A.arcsFrom(Q))
      if (Arc.Sym == Sym)
        Next.insert(Arc.To);
  // Reaching the universal accepting state means the consumed prefix is in
  // Pref, so every continuation is accepted by the module: kill this run.
  if (Next.contains(Universal))
    return;
  Out.push_back(intern(std::move(Next)));
}
