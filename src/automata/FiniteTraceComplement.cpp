//===- automata/FiniteTraceComplement.cpp - Prefix complement ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/FiniteTraceComplement.h"

#include <cassert>

using namespace termcheck;

FiniteTraceComplementOracle::FiniteTraceComplementOracle(const Buchi &A,
                                                         State Universal)
    : A(A), Universal(Universal) {
  assert(Universal < A.numStates() && "unknown universal state");
  assert(A.acceptMask(Universal) != 0 && "universal state must accept");
  A.ensureIndex(); // one build up front; the input never mutates
}

std::vector<State> FiniteTraceComplementOracle::initialStates() {
  StateSet Init;
  for (State S : A.initials().elems())
    Init.insert(S);
  if (Init.contains(Universal))
    return {}; // the module accepts everything; its complement is empty
  return {intern(std::move(Init))};
}

void FiniteTraceComplementOracle::successors(State S, Symbol Sym,
                                             std::vector<State> &Out) {
  // The interner's references are stable, so the subset can be expanded in
  // place; collect into a scratch vector and normalize once instead of
  // maintaining sorted order per insertion (O(d^2) on wide subsets).
  Scratch.clear();
  for (State Q : Subsets[S].elems())
    A.successorsInto(Q, Sym, Scratch);
  StateSet Next(Scratch);
  // Reaching the universal accepting state means the consumed prefix is in
  // Pref, so every continuation is accepted by the module: kill this run.
  if (Next.contains(Universal))
    return;
  Out.push_back(intern(std::move(Next)));
}
