//===- automata/EmptinessInternal.h - Witness recording -------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared between the emptiness engines (Emptiness.cpp and
/// CouvreurEmptiness.cpp): a GbaSource wrapper that records every arc the
/// search traverses, so a nonempty verdict can be certified with a concrete
/// lasso by replaying the explored subgraph through findAcceptingLasso.
/// The recorded graph is a subgraph of the source containing the accepting
/// cycle that decided nonemptiness plus the path reaching it, so the replay
/// always succeeds.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_EMPTINESSINTERNAL_H
#define TERMCHECK_AUTOMATA_EMPTINESSINTERNAL_H

#include "automata/Scc.h"

namespace termcheck {
namespace detail {

class RecordingSource : public GbaSource {
public:
  explicit RecordingSource(GbaSource &Inner) : Inner(Inner) {}

  uint64_t fullMask() const override { return Inner.fullMask(); }

  std::vector<State> initialStates() override {
    Initials = Inner.initialStates();
    for (State S : Initials)
      touch(S);
    return Initials;
  }

  uint64_t acceptMask(State S) override { return Inner.acceptMask(S); }

  void arcs(State S, std::vector<Buchi::Arc> &Out) override {
    touch(S);
    Expanded.push_back(S);
    size_t Before = Out.size();
    Inner.arcs(S, Out);
    for (size_t I = Before; I < Out.size(); ++I) {
      touch(Out[I].To);
      Recorded.push_back({S, Out[I]});
    }
  }

  /// Discards everything recorded so far (a restarted search re-traverses
  /// the same arcs; clearing avoids duplicating them in the rebuilt graph).
  void reset() {
    Initials.clear();
    Expanded.clear();
    Recorded.clear();
    MaxId = 0;
    Any = false;
  }

  /// Rebuilds the explored subgraph as an explicit GBA and extracts an
  /// accepting lasso from it. Call only after the search decided NONEMPTY.
  std::optional<LassoWord> buildWitness() {
    if (!Any)
      return std::nullopt;
    const uint64_t Full = Inner.fullMask();
    uint32_t Conds = 0;
    while (Conds < 64 && (Full >> Conds) != 0)
      ++Conds;
    // A GBA with zero conditions accepts on ANY cycle; model that as one
    // condition carried by every state.
    const bool AllAccepting = Full == 0;
    if (AllAccepting)
      Conds = 1;
    uint32_t Syms = 1;
    for (const RecArc &R : Recorded)
      Syms = std::max(Syms, R.A.Sym + 1);

    Buchi B(Syms, Conds);
    B.addStates(MaxId + 1);
    if (AllAccepting) {
      for (State S = 0; S <= MaxId; ++S)
        B.setAcceptMask(S, 1);
    } else {
      // Only expanded states can lie on a recorded cycle, but stem states
      // need no mask at all, so masks of expanded states suffice.
      for (State S : Expanded)
        B.setAcceptMask(S, Inner.acceptMask(S));
    }
    for (const RecArc &R : Recorded)
      B.addTransition(R.From, R.A.Sym, R.A.To);
    for (State S : Initials)
      B.addInitial(S);
    return findAcceptingLasso(B);
  }

private:
  struct RecArc {
    State From;
    Buchi::Arc A;
  };

  void touch(State S) {
    MaxId = std::max(MaxId, S);
    Any = true;
  }

  GbaSource &Inner;
  std::vector<State> Initials;
  std::vector<State> Expanded;
  std::vector<RecArc> Recorded;
  State MaxId = 0;
  bool Any = false;
};

} // namespace detail
} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_EMPTINESSINTERNAL_H
