//===- automata/Dot.h - Graphviz export -----------------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) renderings of automata and CFGs, for debugging and for
/// the figures in the docs. Accepting states become double circles;
/// generalized acceptance is shown as a bit list; an optional symbol-name
/// callback renders statement text on the edges.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_DOT_H
#define TERMCHECK_AUTOMATA_DOT_H

#include "automata/Buchi.h"

#include <functional>
#include <string>

namespace termcheck {

/// Renders \p A as a DOT digraph. \p SymbolName (optional) maps symbols to
/// edge labels; the default prints the numeric symbol.
std::string toDot(const Buchi &A,
                  const std::function<std::string(Symbol)> &SymbolName = {},
                  const std::string &GraphName = "buchi");

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_DOT_H
