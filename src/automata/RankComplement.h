//===- automata/RankComplement.h - Rank-based BA complement ---*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rank-based complementation of general nondeterministic BAs
/// (Kupferman-Vardi), needed for the stage-4 nondeterministic certified
/// module M_nondet -- the construction the multi-stage approach exists to
/// avoid (the paper's evaluation created only 3 such modules out of 7578).
///
/// A word is rejected iff its run DAG admits an *odd ranking* bounded by
/// 2n: accepting states carry even ranks, ranks never increase along edges,
/// and every run is eventually trapped in an odd rank. The complement
/// guesses a ranking level by level; the breakpoint set O tracks
/// even-ranked runs and acceptance is O = empty. The macro-state space is
/// exponential with a (2n+1)^n factor, so this oracle is only suitable for
/// the small automata stage 4 produces; the caller caps sizes.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_RANKCOMPLEMENT_H
#define TERMCHECK_AUTOMATA_RANKCOMPLEMENT_H

#include "automata/ComplementOracle.h"
#include "automata/Interner.h"
#include "automata/StateSet.h"

namespace termcheck {

/// Lazy Kupferman-Vardi complement of a complete BA.
class RankComplementOracle : public ComplementOracle {
public:
  /// \p A must be complete with one acceptance condition and at most
  /// MaxStates states. The oracle keeps a reference; \p A must outlive it.
  explicit RankComplementOracle(const Buchi &A);

  /// Hard limit on input size (the construction is for tiny automata).
  static constexpr uint32_t MaxInputStates = 14;

  uint32_t numSymbols() const override { return A.numSymbols(); }
  std::vector<State> initialStates() override;
  void successors(State S, Symbol Sym, std::vector<State> &Out) override;
  bool isAccepting(State S) override { return Macro[S].O.empty(); }
  size_t numStatesDiscovered() const override { return Macro.size(); }

private:
  /// A level ranking plus breakpoint set. Rank -1 encodes "not present".
  struct RankState {
    std::vector<int8_t> Rank; // indexed by input state
    StateSet O;

    bool operator==(const RankState &R) const {
      return Rank == R.Rank && O == R.O;
    }
    size_t hash() const {
      size_t H = O.hash();
      for (int8_t V : Rank)
        H = H * 31 + static_cast<size_t>(V + 1);
      return H;
    }
  };

  const Buchi &A;
  int8_t MaxRank;
  Interner<RankState> Macro;

  /// Scratch buffers for successors(): per-call allocations hoisted into
  /// the oracle (one rank enumeration churns through thousands of calls).
  std::vector<int8_t> Bound;
  std::vector<State> Domain, OSuccBuf;
  std::vector<std::vector<int8_t>> Options;
  std::vector<size_t> Odometer;

  State intern(RankState R) { return Macro.intern(std::move(R)); }
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_RANKCOMPLEMENT_H
