//===- automata/SccClassify.cpp - Accepting-SCC classification ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/SccClassify.h"

#include <cassert>

using namespace termcheck;

const char *termcheck::sccClassName(SccClass C) {
  switch (C) {
  case SccClass::NonAccepting:
    return "non_accepting";
  case SccClass::InertWeak:
    return "inert_weak";
  case SccClass::Deterministic:
    return "deterministic";
  case SccClass::Semideterministic:
    return "semideterministic";
  case SccClass::General:
    return "general";
  }
  return "?";
}

namespace {

/// True when the subgraph induced by the non-accepting states of one SCC
/// contains a cycle (iterative three-color DFS; a self-loop counts). No
/// such cycle means the SCC is inherently weak accepting: every infinite
/// path inside it hits the accepting set infinitely often.
bool hasNonAcceptingCycle(const Buchi &A, const std::vector<State> &Members,
                          const SccDecomposition &D) {
  const int32_t Comp = D.CompOf[Members.front()];
  auto InSubgraph = [&](State S) {
    return D.CompOf[S] == Comp && A.acceptMask(S) == 0;
  };

  // 0 = white, 1 = on the DFS stack, 2 = done.
  std::unordered_map<State, uint8_t> Color;
  std::vector<std::pair<State, size_t>> Stack;
  for (State Root : Members) {
    if (!InSubgraph(Root) || Color.count(Root))
      continue;
    Stack.emplace_back(Root, 0);
    Color[Root] = 1;
    while (!Stack.empty()) {
      auto &[S, Next] = Stack.back();
      const auto &Arcs = A.arcsFrom(S);
      bool Descended = false;
      while (Next < Arcs.size()) {
        State T = Arcs[Next++].To;
        if (!InSubgraph(T))
          continue;
        uint8_t &C = Color[T];
        if (C == 1)
          return true;
        if (C == 0) {
          C = 1;
          Stack.emplace_back(T, 0);
          Descended = true;
          break;
        }
      }
      if (!Descended && Next >= Arcs.size()) {
        Color[S] = 2;
        Stack.pop_back();
      }
    }
  }
  return false;
}

/// True when every state reachable from \p Seeds has at most one successor
/// per symbol. (Initial-state multiplicity is the caller's concern; the
/// partial complement re-restricts before checking the full DBA shape.)
bool downstreamDeterministic(const Buchi &A, const std::vector<State> &Seeds) {
  std::vector<uint8_t> Seen(A.numStates(), 0);
  std::vector<State> Work;
  for (State S : Seeds)
    if (!Seen[S]) {
      Seen[S] = 1;
      Work.push_back(S);
    }
  std::vector<uint32_t> Fanout(A.numSymbols());
  while (!Work.empty()) {
    State S = Work.back();
    Work.pop_back();
    std::fill(Fanout.begin(), Fanout.end(), 0);
    for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
      if (++Fanout[Arc.Sym] > 1)
        return false;
      if (!Seen[Arc.To]) {
        Seen[Arc.To] = 1;
        Work.push_back(Arc.To);
      }
    }
  }
  return true;
}

} // namespace

SccClassification termcheck::classifySccs(const Buchi &A) {
  assert(A.fullMask() <= 1 && "classifySccs needs a plain (1-condition) BA");

  SccClassification R;
  R.D = sccDecompose(A);
  R.ClassOf.assign(R.D.NumComps, SccClass::NonAccepting);
  if (R.D.NumComps == 0)
    return R;

  std::vector<std::vector<State>> Members(R.D.NumComps);
  for (State S = 0; S < A.numStates(); ++S)
    if (R.D.CompOf[S] >= 0)
      Members[static_cast<uint32_t>(R.D.CompOf[S])].push_back(S);

  std::vector<uint32_t> Fanout(A.numSymbols());
  for (uint32_t C = 0; C < R.D.NumComps; ++C) {
    const std::vector<State> &M = Members[C];

    // Accepting SCC = nontrivial (some internal arc, so a run can stay
    // forever) and contains an accepting state.
    bool HasInternalArc = false, HasAccepting = false;
    for (State S : M) {
      HasAccepting |= A.acceptMask(S) != 0;
      for (const Buchi::Arc &Arc : A.arcsFrom(S))
        HasInternalArc |= R.D.CompOf[Arc.To] == static_cast<int32_t>(C);
    }
    if (!HasInternalArc || !HasAccepting)
      continue; // stays NonAccepting

    // InertWeak: closed + internally complete + inherently weak.
    bool Closed = true, Complete = true;
    for (State S : M) {
      std::fill(Fanout.begin(), Fanout.end(), 0);
      for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
        Closed &= R.D.CompOf[Arc.To] == static_cast<int32_t>(C);
        ++Fanout[Arc.Sym];
      }
      for (uint32_t F : Fanout)
        Complete &= F > 0;
    }
    if (Closed && Complete && !hasNonAcceptingCycle(A, M, R.D)) {
      R.ClassOf[C] = SccClass::InertWeak;
      continue;
    }

    // Deterministic: the SCC and everything reachable from it.
    if (downstreamDeterministic(A, M)) {
      R.ClassOf[C] = SccClass::Deterministic;
      continue;
    }

    // Semideterministic: at most one in-SCC successor per state and symbol.
    bool InternallyDet = true;
    for (State S : M) {
      std::fill(Fanout.begin(), Fanout.end(), 0);
      for (const Buchi::Arc &Arc : A.arcsFrom(S))
        if (R.D.CompOf[Arc.To] == static_cast<int32_t>(C) &&
            ++Fanout[Arc.Sym] > 1) {
          InternallyDet = false;
          break;
        }
      if (!InternallyDet)
        break;
    }
    R.ClassOf[C] =
        InternallyDet ? SccClass::Semideterministic : SccClass::General;
  }
  return R;
}
