//===- automata/RankComplement.cpp - Rank-based BA complement ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/RankComplement.h"

#include <cassert>

using namespace termcheck;

RankComplementOracle::RankComplementOracle(const Buchi &A) : A(A) {
  assert(A.numConditions() == 1 && "rank complement expects a plain BA");
  assert(A.isComplete() && "rank complement expects a complete BA");
  assert(A.numStates() <= MaxInputStates &&
         "rank-based complementation is restricted to tiny automata");
  MaxRank = static_cast<int8_t>(2 * A.numStates());
  A.ensureIndex(); // one build up front; the input never mutates
}

std::vector<State> RankComplementOracle::initialStates() {
  RankState R;
  R.Rank.assign(A.numStates(), -1);
  for (State Q : A.initials().elems())
    R.Rank[Q] = MaxRank; // 2n is even, legal also for accepting states
  return {intern(std::move(R))};
}

void RankComplementOracle::successors(State S, Symbol Sym,
                                      std::vector<State> &Out) {
  // Stable interner references: Cur can be read in place while intern()
  // discovers successors (no more defensive copy).
  const RankState &Cur = Macro[S];
  const uint32_t N = A.numStates();

  // Per-successor rank bound: min over present predecessors.
  Bound.assign(N, -1); // -1: not in the next level
  for (State Q = 0; Q < N; ++Q) {
    if (Cur.Rank[Q] < 0)
      continue;
    int8_t RankQ = Cur.Rank[Q];
    A.forEachSuccessor(Q, Sym, [this, RankQ](State To) {
      if (Bound[To] < 0 || RankQ < Bound[To])
        Bound[To] = RankQ;
    });
  }
  Domain.clear();
  for (State Q = 0; Q < N; ++Q)
    if (Bound[Q] >= 0)
      Domain.push_back(Q);
  if (Domain.empty())
    return; // cannot happen on complete inputs with nonempty levels

  // delta(O, Sym) restricted to the next level.
  OSuccBuf.clear();
  for (State Q : Cur.O.elems())
    A.successorsInto(Q, Sym, OSuccBuf);
  StateSet OSucc(OSuccBuf);

  // Enumerate every legal level ranking f' <= Bound pointwise, with even
  // ranks on accepting states.
  Options.resize(Domain.size());
  for (size_t I = 0; I < Domain.size(); ++I) {
    State Q = Domain[I];
    bool Accepting = A.acceptMask(Q) != 0;
    Options[I].clear();
    for (int8_t V = 0; V <= Bound[Q]; ++V)
      if (!Accepting || V % 2 == 0)
        Options[I].push_back(V);
    assert(!Options[I].empty() && "rank 0 is always available");
  }

  // Odometer over the option lists.
  Odometer.assign(Domain.size(), 0);
  while (true) {
    RankState Next;
    Next.Rank.assign(N, -1);
    for (size_t I = 0; I < Domain.size(); ++I)
      Next.Rank[Domain[I]] = Options[I][Odometer[I]];
    // Breakpoint: reset to all even-ranked states when O was empty,
    // otherwise keep tracking the still-even successors of O.
    for (State Q : Domain) {
      if (Next.Rank[Q] % 2 != 0)
        continue;
      if (Cur.O.empty() || OSucc.contains(Q))
        Next.O.insert(Q);
    }
    Out.push_back(intern(std::move(Next)));

    // Advance the odometer.
    size_t I = 0;
    while (I < Odometer.size()) {
      if (++Odometer[I] < Options[I].size())
        break;
      Odometer[I] = 0;
      ++I;
    }
    if (I == Odometer.size())
      break;
  }
}
