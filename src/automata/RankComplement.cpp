//===- automata/RankComplement.cpp - Rank-based BA complement ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/RankComplement.h"

#include <cassert>

using namespace termcheck;

RankComplementOracle::RankComplementOracle(const Buchi &A) : A(A) {
  assert(A.numConditions() == 1 && "rank complement expects a plain BA");
  assert(A.isComplete() && "rank complement expects a complete BA");
  assert(A.numStates() <= MaxInputStates &&
         "rank-based complementation is restricted to tiny automata");
  MaxRank = static_cast<int8_t>(2 * A.numStates());
}

State RankComplementOracle::intern(RankState R) {
  size_t H = R.hash();
  auto It = Index.find(H);
  if (It != Index.end())
    for (State S : It->second)
      if (Macro[S] == R)
        return S;
  State S = static_cast<State>(Macro.size());
  Macro.push_back(std::move(R));
  Index[H].push_back(S);
  return S;
}

std::vector<State> RankComplementOracle::initialStates() {
  RankState R;
  R.Rank.assign(A.numStates(), -1);
  for (State Q : A.initials().elems())
    R.Rank[Q] = MaxRank; // 2n is even, legal also for accepting states
  return {intern(std::move(R))};
}

void RankComplementOracle::successors(State S, Symbol Sym,
                                      std::vector<State> &Out) {
  RankState Cur = Macro[S]; // copy: intern() may reallocate Macro
  const uint32_t N = A.numStates();

  // Per-successor rank bound: min over present predecessors.
  std::vector<int8_t> Bound(N, -1); // -1: not in the next level
  for (State Q = 0; Q < N; ++Q) {
    if (Cur.Rank[Q] < 0)
      continue;
    for (const Buchi::Arc &Arc : A.arcsFrom(Q)) {
      if (Arc.Sym != Sym)
        continue;
      if (Bound[Arc.To] < 0 || Cur.Rank[Q] < Bound[Arc.To])
        Bound[Arc.To] = Cur.Rank[Q];
    }
  }
  std::vector<State> Domain;
  for (State Q = 0; Q < N; ++Q)
    if (Bound[Q] >= 0)
      Domain.push_back(Q);
  if (Domain.empty())
    return; // cannot happen on complete inputs with nonempty levels

  // delta(O, Sym) restricted to the next level.
  StateSet OSucc;
  for (State Q : Cur.O.elems())
    for (const Buchi::Arc &Arc : A.arcsFrom(Q))
      if (Arc.Sym == Sym)
        OSucc.insert(Arc.To);

  // Enumerate every legal level ranking f' <= Bound pointwise, with even
  // ranks on accepting states.
  std::vector<int8_t> Choice(Domain.size(), 0);
  std::vector<std::vector<int8_t>> Options(Domain.size());
  for (size_t I = 0; I < Domain.size(); ++I) {
    State Q = Domain[I];
    bool Accepting = A.acceptMask(Q) != 0;
    for (int8_t V = 0; V <= Bound[Q]; ++V)
      if (!Accepting || V % 2 == 0)
        Options[I].push_back(V);
    assert(!Options[I].empty() && "rank 0 is always available");
  }

  // Odometer over the option lists.
  std::vector<size_t> Idx(Domain.size(), 0);
  while (true) {
    RankState Next;
    Next.Rank.assign(N, -1);
    for (size_t I = 0; I < Domain.size(); ++I)
      Next.Rank[Domain[I]] = Options[I][Idx[I]];
    // Breakpoint: reset to all even-ranked states when O was empty,
    // otherwise keep tracking the still-even successors of O.
    for (State Q : Domain) {
      if (Next.Rank[Q] % 2 != 0)
        continue;
      if (Cur.O.empty() || OSucc.contains(Q))
        Next.O.insert(Q);
    }
    Out.push_back(intern(std::move(Next)));

    // Advance the odometer.
    size_t I = 0;
    while (I < Idx.size()) {
      if (++Idx[I] < Options[I].size())
        break;
      Idx[I] = 0;
      ++I;
    }
    if (I == Idx.size())
      break;
  }
}
