//===- automata/CouvreurEmptiness.cpp - Couvreur/Tarjan emptiness --------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/CouvreurEmptiness.h"

#include "automata/DfsFrames.h"
#include "automata/EmptinessInternal.h"
#include "automata/PerfCounters.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>

using namespace termcheck;

namespace {

/// Entry of the Tarjan roots stack: a potential SCC root with the
/// acceptance conditions its candidate component covers so far (merged
/// side cycles fold their masks in here, which is what makes the roots
/// stack the authority on "marks on the path" for the cutoff).
struct RootEntry {
  State Root;
  uint32_t DfsNum;
  uint64_t Mask;
};

/// One search attempt. A pass either completes (IsEmpty/Aborted in \p R)
/// or detects that an SCC merge brought acceptance marks into the region
/// of a live on-stack prune, in which case it sets \p Invalidated and the
/// caller restarts with on-stack cutoffs disabled.
EmptinessResult runPass(GbaSource &Src, const EmptinessOptions &Opts,
                        bool UseOnStack, bool &Invalidated) {
  EmptinessResult R;
  const uint64_t Full = Src.fullMask();

  // Dense ids (GbaSource contract): flat vectors grown on first touch,
  // exactly as in UselessStateRemover.
  std::vector<uint32_t> DfsNum; // 0 = unvisited (Cnt starts at 1)
  std::vector<uint8_t> OnStack;
  auto Touch = [](auto &V, State S) -> decltype(V[0]) & {
    if (S >= V.size())
      V.resize(S + 1, 0);
    return V[S];
  };
  auto InSet = [](const auto &V, State S) {
    return S < V.size() && V[S] != 0;
  };

  std::vector<State> Act;
  std::vector<RootEntry> Roots;
  ArcArena Arena;
  std::vector<ArcArena::Frame> Frames;
  /// DFS numbers of the justifiers of every prune whose justifying state
  /// is still on the stack (so the prune is provisional).
  std::vector<uint32_t> ActivePrunes;
  uint32_t Cnt = 0;

  const uint32_t Stride = Opts.PollStride == 0 ? 1 : Opts.PollStride;
  uint32_t AbortPollCountdown = Stride;
  auto PollAbort = [&]() {
    if (!Opts.ShouldAbort)
      return false;
    if (--AbortPollCountdown != 0)
      return false;
    AbortPollCountdown = Stride;
    return Opts.ShouldAbort();
  };

  auto KnownEmpty = [&](State Q) {
    return Opts.IsKnownEmpty && Opts.IsKnownEmpty(Q);
  };

  auto enter = [&](State S, uint64_t Mask) {
    Touch(DfsNum, S) = ++Cnt;
    Roots.push_back({S, Cnt, Mask});
    Act.push_back(S);
    Touch(OnStack, S) = 1;
    FaultInjector::hit(FaultSite::EmptinessStep);
    Frames.push_back(Arena.push(Src, S));
    ++R.StatesExplored;
  };

  // The check_simul_less walk: a justifier for the (mark-free) successor
  // \p T must lie on the current DFS path with no acceptance marks at or
  // above its candidate region -- the roots stack folds in every mark of
  // merged side cycles, so scanning it from the top for the first marked
  // entry bounds how deep the path walk may reach. \returns the
  // justifier's DFS number, or 0 when none qualifies.
  auto onStackJustifier = [&](State T) -> uint32_t {
    uint32_t MinDfs = 1;
    for (size_t J = Roots.size(); J-- > 0;) {
      if (Roots[J].Mask != 0) {
        if (J + 1 == Roots.size())
          return 0; // the topmost candidate region already carries marks
        MinDfs = Roots[J + 1].DfsNum;
        break;
      }
    }
    for (size_t I = Frames.size(); I-- > 0;) {
      State S = Frames[I].S;
      if (DfsNum[S] < MinDfs)
        break;
      if (Opts.SubsumedBy(T, S))
        return DfsNum[S];
    }
    return 0;
  };

  for (State QI : Src.initialStates()) {
    if (InSet(DfsNum, QI))
      continue;
    if (KnownEmpty(QI)) {
      ++R.ClosedCutoffs;
      continue;
    }
    enter(QI, Src.acceptMask(QI));

    while (!Frames.empty()) {
      if (PollAbort()) {
        R.Aborted = true;
        return R;
      }
      ArcArena::Frame &F = Frames.back();
      if (!Arena.done(F)) {
        State T = Arena.next(F).To;
        if (InSet(DfsNum, T)) {
          if (!InSet(OnStack, T))
            continue; // closed in this pass: empty language
          // T closes a cycle: merge the root candidates younger than T.
          uint32_t TNum = DfsNum[T];
          uint64_t Mask = 0;
          RootEntry Last{};
          do {
            assert(!Roots.empty() && "roots stack underflow");
            Last = Roots.back();
            Roots.pop_back();
            Mask |= Last.Mask;
          } while (Last.DfsNum > TNum);
          Roots.push_back({Last.Root, Last.DfsNum, Mask});
          if (Mask == Full) {
            // Certified by explored arcs alone -- cutoffs never justify
            // NONEMPTY.
            R.IsEmpty = false;
            return R;
          }
          if (UseOnStack && Mask != 0 && !ActivePrunes.empty()) {
            // Marks entered the merged region; any prune justified at or
            // above the merged root no longer has a mark-free path
            // segment under it.
            for (uint32_t J : ActivePrunes) {
              if (J >= Last.DfsNum) {
                Invalidated = true;
                return R;
              }
            }
          }
          continue;
        }
        if (KnownEmpty(T)) {
          ++R.ClosedCutoffs;
          continue;
        }
        uint64_t TMask = Src.acceptMask(T);
        if (UseOnStack && TMask == 0) {
          if (uint32_t J = onStackJustifier(T)) {
            ActivePrunes.push_back(J);
            ++R.OnStackCutoffs;
            continue;
          }
        }
        enter(T, TMask);
        continue;
      }

      // Leaving F.S: close its SCC if F.S is the current candidate root.
      ArcArena::Frame Top = Frames.back();
      Frames.pop_back();
      if (!Roots.empty() && Roots.back().Root == Top.S) {
        uint32_t RootNum = Roots.back().DfsNum;
        Roots.pop_back();
        ++R.SccsClosed;
        State U;
        do {
          assert(!Act.empty() && "act stack underflow");
          U = Act.back();
          Act.pop_back();
          OnStack[U] = 0;
          if (Opts.AddKnownEmpty)
            Opts.AddKnownEmpty(U);
        } while (U != Top.S);
        if (!ActivePrunes.empty()) {
          // Justifiers inside the popped component are now proven to have
          // empty language, so their prunes are permanent (plain language
          // inclusion suffices from here on).
          ActivePrunes.erase(std::remove_if(ActivePrunes.begin(),
                                            ActivePrunes.end(),
                                            [&](uint32_t J) {
                                              return J >= RootNum;
                                            }),
                             ActivePrunes.end());
        }
      }
      Arena.pop(Top);
    }
  }

  R.IsEmpty = true;
  return R;
}

} // namespace

EmptinessResult CouvreurEmptiness::check(GbaSource &Src0,
                                         const EmptinessOptions &Opts) {
  detail::RecordingSource Rec(Src0);
  GbaSource &Src =
      Opts.FindWitness ? static_cast<GbaSource &>(Rec) : Src0;

  EmptinessResult Out;
  bool UseOnStack =
      static_cast<bool>(Opts.SubsumedBy) && Opts.SubsumptionIsEarly;
  for (;;) {
    bool Invalidated = false;
    EmptinessResult R = runPass(Src, Opts, UseOnStack, Invalidated);
    Out.StatesExplored += R.StatesExplored;
    Out.SccsClosed += R.SccsClosed;
    Out.OnStackCutoffs += R.OnStackCutoffs;
    Out.ClosedCutoffs += R.ClosedCutoffs;
    if (!Invalidated) {
      Out.IsEmpty = R.IsEmpty;
      Out.Aborted = R.Aborted;
      if (!Out.IsEmpty && !Out.Aborted && Opts.FindWitness)
        Out.Witness = Rec.buildWitness();
      perf::local().CouvreurSccs += Out.SccsClosed;
      perf::local().CouvreurCutoffs += Out.OnStackCutoffs + Out.ClosedCutoffs;
      return Out;
    }
    // A merge invalidated a provisional prune: rerun without on-stack
    // cutoffs (trivially sound; the closed antichain may hold entries
    // added under the invalidated prune, so the caller's hook discards
    // it too). Expected rare -- Result.CutoffRestarts counts it.
    ++Out.CutoffRestarts;
    UseOnStack = false;
    if (Opts.ResetKnownEmpty)
      Opts.ResetKnownEmpty();
    if (Opts.FindWitness)
      Rec.reset();
  }
}
