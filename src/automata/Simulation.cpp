//===- automata/Simulation.cpp - Early simulations (Section 6.1) ---------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Simulation.h"

#include <cassert>

using namespace termcheck;

size_t SimulationRelation::pairCount() const {
  size_t Count = 0;
  for (uint8_t B : Rel)
    Count += B ? 1 : 0;
  return Count;
}

namespace {

/// One duplicator step outcome: the spoiler moved to P2, the duplicator to
/// R2, with an obligation window \p Pending. \returns false when the move
/// violates the simulation condition, otherwise sets \p NextPending.
bool stepOk(const Buchi &A, bool Pending, State P2, State R2,
            bool &NextPending) {
  bool SpoilerAcc = A.acceptMask(P2) != 0;
  bool Satisfied = A.acceptMask(R2) != 0;
  if (Pending && SpoilerAcc && !Satisfied)
    return false; // the window closed at P2 without a duplicator visit
  NextPending = SpoilerAcc || (Pending && !Satisfied);
  return true;
}

} // namespace

SimulationRelation termcheck::computeEarlySimulation(const Buchi &A,
                                                     SimulationKind Kind) {
  assert(A.numConditions() == 1 && "early simulation expects a plain BA");
  A.ensureIndex(); // duplicator replies are per-symbol CSR rows below
  const size_t N = A.numStates();
  // Win[(p * N + r) * 2 + pending]: duplicator survives forever from the
  // configuration. Greatest fixpoint: start optimistic, strike losing
  // configurations until stable.
  std::vector<uint8_t> Win(N * N * 2, 1);
  auto Index = [N](State P, State R, bool Pending) {
    return (static_cast<size_t>(P) * N + R) * 2 + (Pending ? 1 : 0);
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (State P = 0; P < N; ++P) {
      for (State R = 0; R < N; ++R) {
        for (int Pending = 0; Pending < 2; ++Pending) {
          if (!Win[Index(P, R, Pending)])
            continue;
          // The spoiler picks any transition; the duplicator must answer
          // with a same-symbol transition that keeps a winning config.
          bool Lost = false;
          for (const Buchi::Arc &Move : A.arcsFrom(P)) {
            bool Answered = false;
            // The duplicator's candidate replies are exactly the CSR row
            // for (R, Move.Sym); no same-symbol filtering needed.
            auto [Reply, End] = A.successorsSpan(R, Move.Sym);
            for (; Reply != End; ++Reply) {
              bool Next;
              if (!stepOk(A, Pending != 0, Move.To, *Reply, Next))
                continue;
              if (Win[Index(Move.To, *Reply, Next)]) {
                Answered = true;
                break;
              }
            }
            if (!Answered) {
              Lost = true;
              break;
            }
          }
          if (Lost) {
            Win[Index(P, R, Pending)] = 0;
            Changed = true;
          }
        }
      }
    }
  }

  // Project to the state relation with the initial-window rules: for the
  // early simulation the i = -1 window is open from the start (so an
  // accepting spoiler start must be matched immediately); early+1 opens a
  // window only at the spoiler's first accepting visit.
  SimulationRelation Out;
  Out.N = N;
  Out.Rel.assign(N * N, 0);
  for (State P = 0; P < N; ++P) {
    for (State R = 0; R < N; ++R) {
      bool PAcc = A.acceptMask(P) != 0;
      bool RAcc = A.acceptMask(R) != 0;
      bool InitPending;
      if (Kind == SimulationKind::Early) {
        if (PAcc && !RAcc)
          continue; // the -1 window is already violated at position 0
        InitPending = PAcc || !RAcc;
      } else {
        InitPending = PAcc;
      }
      Out.Rel[static_cast<size_t>(P) * N + R] = Win[Index(P, R, InitPending)];
    }
  }
  return Out;
}

SimulationRelation
termcheck::computeDirectSimulation(const Buchi &A,
                                   const std::function<bool()> &ShouldAbort) {
  A.ensureIndex(); // duplicator replies are per-symbol CSR rows below
  const size_t N = A.numStates();
  SimulationRelation Out;
  Out.N = N;
  Out.Rel.assign(N * N, 1);
  // Initial refinement: acceptance-mark containment.
  for (State P = 0; P < N; ++P)
    for (State R = 0; R < N; ++R)
      if ((A.acceptMask(P) & ~A.acceptMask(R)) != 0)
        Out.Rel[static_cast<size_t>(P) * N + R] = 0;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (State P = 0; P < N; ++P) {
      // One poll per spoiler row keeps the overhead negligible while
      // bounding uninterrupted work to O(N * arcs^2).
      if (ShouldAbort && ShouldAbort()) {
        Out.Aborted = true;
        return Out;
      }
      for (State R = 0; R < N; ++R) {
        size_t Idx = static_cast<size_t>(P) * N + R;
        if (!Out.Rel[Idx])
          continue;
        bool Ok = true;
        for (const Buchi::Arc &Move : A.arcsFrom(P)) {
          bool Matched = false;
          auto [Reply, End] = A.successorsSpan(R, Move.Sym);
          for (; Reply != End; ++Reply) {
            if (Out.Rel[static_cast<size_t>(Move.To) * N + *Reply]) {
              Matched = true;
              break;
            }
          }
          if (!Matched) {
            Ok = false;
            break;
          }
        }
        if (!Ok) {
          Out.Rel[Idx] = 0;
          Changed = true;
        }
      }
    }
  }
  return Out;
}

Buchi termcheck::quotientByDirectSimulation(
    const Buchi &A, const std::function<bool()> &ShouldAbort) {
  if (ShouldAbort && ShouldAbort())
    return A;
  SimulationRelation Sim = computeDirectSimulation(A, ShouldAbort);
  if (Sim.Aborted)
    return A;
  const uint32_t N = A.numStates();
  // Class representative: the smallest mutually-similar state.
  std::vector<State> ClassOf(N);
  std::vector<State> Repr;
  for (State S = 0; S < N; ++S) {
    State Found = UINT32_MAX;
    for (size_t I = 0; I < Repr.size(); ++I) {
      State R = Repr[I];
      if (Sim.simulates(S, R) && Sim.simulates(R, S)) {
        Found = static_cast<State>(I);
        break;
      }
    }
    if (Found == UINT32_MAX) {
      Found = static_cast<State>(Repr.size());
      Repr.push_back(S);
    }
    ClassOf[S] = Found;
  }

  Buchi Out(A.numSymbols(), A.numConditions());
  Out.addStates(static_cast<uint32_t>(Repr.size()));
  for (size_t I = 0; I < Repr.size(); ++I)
    Out.setAcceptMask(static_cast<State>(I), A.acceptMask(Repr[I]));
  for (State S = 0; S < N; ++S)
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(ClassOf[S], Arc.Sym, ClassOf[Arc.To]);
  for (State S : A.initials().elems())
    Out.addInitial(ClassOf[S]);
  return Out;
}
