//===- automata/Dot.cpp - Graphviz export ---------------------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Dot.h"

#include <cstdio>

using namespace termcheck;

/// Escapes \p S for a double-quoted DOT string. Quotes and backslashes
/// get a backslash; control characters are rewritten too (newline/tab to
/// their DOT escapes, the rest to \ooo octal), since a raw control byte
/// inside a label makes Graphviz reject or mis-render the file.
static std::string escapeDot(const std::string &S) {
  std::string Out;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (C == '"' || C == '\\') {
      Out.push_back('\\');
      Out.push_back(C);
    } else if (C == '\n') {
      Out += "\\n";
    } else if (C == '\r') {
      Out += "\\r";
    } else if (C == '\t') {
      Out += "\\t";
    } else if (U < 0x20 || U == 0x7f) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\%03o", U);
      Out += Buf;
    } else {
      Out.push_back(C);
    }
  }
  return Out;
}

std::string termcheck::toDot(
    const Buchi &A, const std::function<std::string(Symbol)> &SymbolName,
    const std::string &GraphName) {
  // The graph id is always emitted as a quoted (escaped) string: a bare id
  // such as "my graph" or "2nd" is a DOT syntax error, and a caller-chosen
  // name must never be able to break out of the header line.
  std::string S = "digraph \"" + escapeDot(GraphName) + "\" {\n"
                  "  rankdir=LR;\n"
                  "  node [shape=circle];\n";
  // Invisible entry arrows for initial states.
  for (State Q : A.initials().elems()) {
    S += "  init" + std::to_string(Q) + " [shape=point, style=invis];\n";
    S += "  init" + std::to_string(Q) + " -> q" + std::to_string(Q) + ";\n";
  }
  for (State Q = 0; Q < A.numStates(); ++Q) {
    uint64_t Mask = A.acceptMask(Q);
    std::string Label = "q" + std::to_string(Q);
    if (Mask != 0 && A.numConditions() > 1) {
      Label += " {";
      bool First = true;
      for (uint32_t C = 0; C < A.numConditions(); ++C) {
        if (!(Mask & (1ULL << C)))
          continue;
        if (!First)
          Label += ",";
        Label += std::to_string(C);
        First = false;
      }
      Label += "}";
    }
    S += "  q" + std::to_string(Q) + " [label=\"" + escapeDot(Label) + "\"";
    if (Mask != 0)
      S += ", shape=doublecircle";
    S += "];\n";
  }
  for (State Q = 0; Q < A.numStates(); ++Q) {
    for (const Buchi::Arc &Arc : A.arcsFrom(Q)) {
      std::string Label = SymbolName ? SymbolName(Arc.Sym)
                                     : std::to_string(Arc.Sym);
      S += "  q" + std::to_string(Q) + " -> q" + std::to_string(Arc.To) +
           " [label=\"" + escapeDot(Label) + "\"];\n";
    }
  }
  S += "}\n";
  return S;
}
