//===- automata/Dot.cpp - Graphviz export ---------------------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Dot.h"

using namespace termcheck;

static std::string escapeDot(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

std::string termcheck::toDot(
    const Buchi &A, const std::function<std::string(Symbol)> &SymbolName,
    const std::string &GraphName) {
  std::string S = "digraph " + GraphName + " {\n  rankdir=LR;\n"
                  "  node [shape=circle];\n";
  // Invisible entry arrows for initial states.
  for (State Q : A.initials().elems()) {
    S += "  init" + std::to_string(Q) + " [shape=point, style=invis];\n";
    S += "  init" + std::to_string(Q) + " -> q" + std::to_string(Q) + ";\n";
  }
  for (State Q = 0; Q < A.numStates(); ++Q) {
    uint64_t Mask = A.acceptMask(Q);
    std::string Label = "q" + std::to_string(Q);
    if (Mask != 0 && A.numConditions() > 1) {
      Label += " {";
      bool First = true;
      for (uint32_t C = 0; C < A.numConditions(); ++C) {
        if (!(Mask & (1ULL << C)))
          continue;
        if (!First)
          Label += ",";
        Label += std::to_string(C);
        First = false;
      }
      Label += "}";
    }
    S += "  q" + std::to_string(Q) + " [label=\"" + escapeDot(Label) + "\"";
    if (Mask != 0)
      S += ", shape=doublecircle";
    S += "];\n";
  }
  for (State Q = 0; Q < A.numStates(); ++Q) {
    for (const Buchi::Arc &Arc : A.arcsFrom(Q)) {
      std::string Label = SymbolName ? SymbolName(Arc.Sym)
                                     : std::to_string(Arc.Sym);
      S += "  q" + std::to_string(Q) + " -> q" + std::to_string(Arc.To) +
           " [label=\"" + escapeDot(Label) + "\"];\n";
    }
  }
  S += "}\n";
  return S;
}
