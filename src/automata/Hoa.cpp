//===- automata/Hoa.cpp - HOA-format interop -------------------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Hoa.h"

#include <cassert>
#include <cctype>
#include <sstream>

using namespace termcheck;

namespace {

/// Number of atomic propositions needed for \p NumSymbols symbols.
uint32_t apCount(uint32_t NumSymbols) {
  uint32_t Bits = 0;
  while ((1u << Bits) < NumSymbols)
    ++Bits;
  return Bits == 0 ? 1 : Bits;
}

/// Renders symbol \p Sym as a full AP conjunction, e.g. "0&!1&2".
std::string labelOf(Symbol Sym, uint32_t Aps) {
  std::string S;
  for (uint32_t B = 0; B < Aps; ++B) {
    if (B != 0)
      S += "&";
    if (!(Sym & (1u << B)))
      S += "!";
    S += std::to_string(B);
  }
  return S;
}

} // namespace

std::string termcheck::toHoa(const Buchi &A, const std::string &Name) {
  uint32_t Aps = apCount(A.numSymbols());
  std::ostringstream OS;
  OS << "HOA: v1\n";
  OS << "name: \"" << Name << "\"\n";
  OS << "States: " << A.numStates() << "\n";
  for (State S : A.initials().elems())
    OS << "Start: " << S << "\n";
  OS << "AP: " << Aps;
  for (uint32_t B = 0; B < Aps; ++B)
    OS << " \"p" << B << "\"";
  OS << "\n";
  OS << "acc-name: generalized-Buchi " << A.numConditions() << "\n";
  OS << "Acceptance: " << A.numConditions() << " ";
  for (uint32_t C = 0; C < A.numConditions(); ++C) {
    if (C != 0)
      OS << " & ";
    OS << "Inf(" << C << ")";
  }
  OS << "\n";
  OS << "properties: explicit-labels state-acc\n";
  OS << "--BODY--\n";
  for (State S = 0; S < A.numStates(); ++S) {
    OS << "State: " << S;
    uint64_t Mask = A.acceptMask(S);
    if (Mask != 0) {
      OS << " {";
      bool First = true;
      for (uint32_t C = 0; C < A.numConditions(); ++C) {
        if (!(Mask & (1ULL << C)))
          continue;
        if (!First)
          OS << " ";
        OS << C;
        First = false;
      }
      OS << "}";
    }
    OS << "\n";
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      OS << "  [" << labelOf(Arc.Sym, Aps) << "] " << Arc.To << "\n";
  }
  OS << "--END--\n";
  return OS.str();
}

namespace {

/// Minimal tokenizer over the HOA text.
class HoaReader {
public:
  explicit HoaReader(const std::string &Text) : Text(Text) {}

  HoaParseResult run();

private:
  const std::string &Text;
  size_t Pos = 0;

  void skipSpace() {
    while (Pos < Text.size()) {
      if (std::isspace(static_cast<unsigned char>(Text[Pos]))) {
        ++Pos;
      } else if (Text[Pos] == '/' && Pos + 1 < Text.size() &&
                 Text[Pos + 1] == '*') {
        Pos += 2;
        while (Pos + 1 < Text.size() &&
               !(Text[Pos] == '*' && Text[Pos + 1] == '/'))
          ++Pos;
        Pos = Pos + 2 <= Text.size() ? Pos + 2 : Text.size();
      } else {
        break;
      }
    }
  }

  bool eof() {
    skipSpace();
    return Pos >= Text.size();
  }

  /// Reads the next whitespace-delimited token; quoted strings are one
  /// token (quotes stripped); bracketed labels are one token including the
  /// brackets.
  std::string next() {
    skipSpace();
    if (Pos >= Text.size())
      return "";
    if (Text[Pos] == '"') {
      size_t End = Text.find('"', Pos + 1);
      if (End == std::string::npos)
        End = Text.size() - 1;
      std::string Tok = Text.substr(Pos + 1, End - Pos - 1);
      Pos = End + 1;
      return Tok;
    }
    if (Text[Pos] == '[') {
      size_t End = Text.find(']', Pos);
      if (End == std::string::npos)
        End = Text.size() - 1;
      std::string Tok = Text.substr(Pos, End - Pos + 1);
      Pos = End + 1;
      return Tok;
    }
    if (Text[Pos] == '{') {
      size_t End = Text.find('}', Pos);
      if (End == std::string::npos)
        End = Text.size() - 1;
      std::string Tok = Text.substr(Pos, End - Pos + 1);
      Pos = End + 1;
      return Tok;
    }
    size_t Begin = Pos;
    while (Pos < Text.size() &&
           !std::isspace(static_cast<unsigned char>(Text[Pos])) &&
           Text[Pos] != '[' && Text[Pos] != '{')
      ++Pos;
    return Text.substr(Begin, Pos - Begin);
  }

  std::string peek() {
    size_t Saved = Pos;
    std::string Tok = next();
    Pos = Saved;
    return Tok;
  }
};

/// Parses "a&!b&c"-style full conjunctions into a symbol, or `t` into all
/// symbols. \returns false on malformed/partial labels.
bool parseLabel(const std::string &Label, uint32_t Aps, uint32_t NumSymbols,
                std::vector<Symbol> &Out) {
  assert(Label.size() >= 2 && Label.front() == '[' && Label.back() == ']');
  std::string Body = Label.substr(1, Label.size() - 2);
  // Strip blanks.
  std::string Clean;
  for (char C : Body)
    if (!std::isspace(static_cast<unsigned char>(C)))
      Clean.push_back(C);
  if (Clean == "t") {
    for (Symbol S = 0; S < NumSymbols; ++S)
      Out.push_back(S);
    return true;
  }
  std::vector<int> BitOf(Aps, -1); // -1 unset, 0/1 fixed
  size_t I = 0;
  while (I < Clean.size()) {
    bool Neg = false;
    if (Clean[I] == '!') {
      Neg = true;
      ++I;
    }
    size_t Begin = I;
    while (I < Clean.size() && std::isdigit(static_cast<unsigned char>(Clean[I])))
      ++I;
    if (Begin == I)
      return false;
    uint32_t Ap = static_cast<uint32_t>(std::stoul(Clean.substr(Begin, I - Begin)));
    if (Ap >= Aps)
      return false;
    BitOf[Ap] = Neg ? 0 : 1;
    if (I < Clean.size()) {
      if (Clean[I] != '&')
        return false;
      ++I;
    }
  }
  // Expand unset bits (partial labels denote several symbols).
  std::vector<Symbol> Partial{0};
  Symbol Fixed = 0;
  std::vector<uint32_t> Free;
  for (uint32_t B = 0; B < Aps; ++B) {
    if (BitOf[B] == 1)
      Fixed |= 1u << B;
    else if (BitOf[B] == -1)
      Free.push_back(B);
  }
  uint32_t Count = 1u << Free.size();
  for (uint32_t Bits = 0; Bits < Count; ++Bits) {
    Symbol S = Fixed;
    for (size_t F = 0; F < Free.size(); ++F)
      if (Bits & (1u << F))
        S |= 1u << Free[F];
    if (S < NumSymbols)
      Out.push_back(S);
  }
  return true;
}

} // namespace

HoaParseResult HoaReader::run() {
  HoaParseResult Result;
  auto Fail = [&](const std::string &Msg) {
    Result.A.reset();
    Result.Error = Msg;
    return Result;
  };

  uint32_t NumStates = 0, Aps = 0, NumConds = 1;
  std::vector<State> Starts;
  bool SawHoa = false;

  // Header.
  while (!eof()) {
    std::string Tok = next();
    if (Tok == "HOA:") {
      if (next() != "v1")
        return Fail("unsupported HOA version");
      SawHoa = true;
    } else if (Tok == "States:") {
      NumStates = static_cast<uint32_t>(std::stoul(next()));
    } else if (Tok == "Start:") {
      Starts.push_back(static_cast<State>(std::stoul(next())));
    } else if (Tok == "AP:") {
      Aps = static_cast<uint32_t>(std::stoul(next()));
      for (uint32_t B = 0; B < Aps; ++B)
        next(); // AP names
    } else if (Tok == "Acceptance:") {
      NumConds = static_cast<uint32_t>(std::stoul(next()));
      if (NumConds == 0)
        return Fail("acceptance with zero sets is not Buchi");
      // Swallow the acceptance formula tokens up to end of line content:
      // we trust acc-name / the writer's Inf-conjunction convention.
      for (uint32_t C = 0; C < NumConds; ++C) {
        std::string F = next();
        if (C + 1 < NumConds)
          next(); // '&'
        (void)F;
      }
    } else if (Tok == "--BODY--") {
      break;
    } else if (Tok == "name:" || Tok == "acc-name:" || Tok == "tool:" ||
               Tok == "properties:") {
      // Swallow the rest of the logical line lazily: tokens until one that
      // looks like the next header keyword. Simplest: consume tokens while
      // the upcoming token does not end with ':' and is not --BODY--.
      while (!eof()) {
        std::string Ahead = peek();
        if (Ahead == "--BODY--" || (!Ahead.empty() && Ahead.back() == ':'))
          break;
        next();
      }
    } else if (Tok.empty()) {
      break;
    } else {
      // Unknown headers are skipped the same lazy way.
      while (!eof()) {
        std::string Ahead = peek();
        if (Ahead == "--BODY--" || (!Ahead.empty() && Ahead.back() == ':'))
          break;
        next();
      }
    }
  }
  if (!SawHoa)
    return Fail("missing HOA: v1 header");
  if (Aps == 0)
    return Fail("missing AP: header");

  uint32_t NumSymbols = 1u << Aps;
  Buchi A(NumSymbols, NumConds);
  A.addStates(NumStates);
  for (State S : Starts) {
    if (S >= NumStates)
      return Fail("Start state out of range");
    A.addInitial(S);
  }

  // Body.
  State Cur = 0;
  bool HaveState = false;
  while (!eof()) {
    std::string Tok = next();
    if (Tok == "--END--")
      break;
    if (Tok == "State:") {
      Cur = static_cast<State>(std::stoul(next()));
      if (Cur >= NumStates)
        return Fail("State id out of range");
      HaveState = true;
      // Optional accset {..} and optional quoted name.
      while (!eof()) {
        std::string Ahead = peek();
        if (!Ahead.empty() && Ahead.front() == '{') {
          std::string Sets = next();
          std::string Body = Sets.substr(1, Sets.size() - 2);
          std::istringstream IS(Body);
          uint32_t C;
          while (IS >> C) {
            if (C >= NumConds)
              return Fail("acceptance set out of range");
            A.setAccepting(Cur, C);
          }
        } else {
          break;
        }
      }
      continue;
    }
    if (!Tok.empty() && Tok.front() == '[') {
      if (!HaveState)
        return Fail("edge before any State:");
      std::vector<Symbol> Syms;
      if (!parseLabel(Tok, Aps, NumSymbols, Syms))
        return Fail("unsupported edge label " + Tok);
      State To = static_cast<State>(std::stoul(next()));
      if (To >= NumStates)
        return Fail("edge target out of range");
      for (Symbol S : Syms)
        A.addTransition(Cur, S, To);
      continue;
    }
    return Fail("unexpected body token '" + Tok + "'");
  }

  Result.A = std::move(A);
  return Result;
}

HoaParseResult termcheck::parseHoa(const std::string &Text) {
  return HoaReader(Text).run();
}
