//===- automata/CouvreurEmptiness.h - Couvreur/Tarjan emptiness -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single-pass iterative Couvreur/Tarjan emptiness check with on-stack
/// simulation cutoffs, after kofola's emptiness_check.cpp (Havlena et al.,
/// Modular Mix-and-Match Complementation, 2023).
///
/// The SCC search itself is the same roots-stack formulation as
/// UselessStateRemover (Algorithm 1): a cycle-closing arc merges every
/// roots entry younger than its target, OR-ing their acceptance masks; a
/// merged mask covering fullMask() proves a reachable accepting cycle, so
/// the automaton is NONEMPTY. What Couvreur adds over the Gaiser-Schwoon
/// configuration is WHERE subsumption applies: Algorithm 1 consults the
/// antichain only against fully classified states, while this engine also
/// prunes a successor subsumed by a state still ON the DFS stack -- the
/// check_simul_less trick -- which collapses towers of mutually similar
/// SCC states while the search is inside them.
///
/// Cutoff soundness (DESIGN.md section 17 has the full argument):
///
/// * Closed-state cutoff: q is skipped when IsKnownEmpty(q); needs only
///   language inclusion into a state already proved empty. Always on.
/// * On-stack cutoff: successor q with acceptMask(q) == 0 is pruned when
///   an on-stack justifier s with SubsumedBy(q, s) exists in the marks-free
///   suffix of the stack (no acceptance marks on the path segment below s,
///   read off the roots stack, whose entries fold in all marks of merged
///   side cycles). Requires SubsumptionIsEarly: any accepting run through
///   q then forces an accepting run through the still-open s, so pruning q
///   cannot turn a nonempty product empty. Each prune records its
///   justifier's DFS number; if a later merge brings acceptance marks into
///   a region at or below a live justifier, the discipline is violated and
///   the search RESTARTS from scratch with on-stack cutoffs disabled
///   (trivially sound, and rare -- Result.CutoffRestarts counts it). A
///   prune becomes permanent when its justifier's SCC closes empty.
///
/// Nonempty verdicts are always certified by explored arcs (a merged-mask
/// cover), never by a cutoff; with FindWitness the traversed subgraph is
/// replayed through findAcceptingLasso to hand back a concrete lasso.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_COUVREUREMPTINESS_H
#define TERMCHECK_AUTOMATA_COUVREUREMPTINESS_H

#include "automata/Emptiness.h"

namespace termcheck {

class CouvreurEmptiness : public EmptinessEngine {
public:
  const char *name() const override { return "couvreur"; }
  EmptinessResult check(GbaSource &Src, const EmptinessOptions &Opts) override;
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_COUVREUREMPTINESS_H
