//===- automata/Buchi.h - (Generalized) Büchi automata --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit generalized Büchi automata over a dense symbol alphabet, as in
/// Section 2 of the paper. A GBA carries up to 64 acceptance conditions,
/// stored as a per-state bitmask; a plain BA is the k = 1 case. The
/// analysis keeps the remaining-paths automaton generalized because GBA
/// products are smaller and intersect more cheaply than degeneralized BAs
/// (the paper's footnote at the start of Section 4).
///
/// Every engine in the refinement loop funnels through per-(state, symbol)
/// successor queries, so transitions are indexed by a compressed-sparse-row
/// table keyed by (state, symbol). The index is built lazily on first
/// query and invalidated by mutation; addTransition is an O(1) append
/// (duplicates are removed at index-build time, preserving first-occurrence
/// order, so construction-order determinism is unchanged). The lazily
/// rebuilt caches make the const accessors non-reentrant for a *first*
/// query from two threads at once; call ensureIndex() before sharing a
/// const Buchi across threads (nothing in the tree shares one today).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_BUCHI_H
#define TERMCHECK_AUTOMATA_BUCHI_H

#include "automata/StateSet.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace termcheck {

/// An explicit GBA with bitmask acceptance.
class Buchi {
public:
  /// One labeled transition out of a state.
  struct Arc {
    Symbol Sym;
    State To;
    bool operator==(const Arc &O) const {
      return Sym == O.Sym && To == O.To;
    }
  };

  /// Creates an automaton over \p NumSymbols symbols with \p NumConditions
  /// acceptance conditions (1..64).
  explicit Buchi(uint32_t NumSymbols, uint32_t NumConditions = 1)
      : Symbols(NumSymbols), Conditions(NumConditions) {
    assert(NumConditions >= 1 && NumConditions <= 64 &&
           "acceptance conditions must fit a 64-bit mask");
  }

  uint32_t numSymbols() const { return Symbols; }
  uint32_t numConditions() const { return Conditions; }
  uint32_t numStates() const { return static_cast<uint32_t>(Adj.size()); }

  size_t numTransitions() const {
    flushDedup();
    size_t N = 0;
    for (const auto &Arcs : Adj)
      N += Arcs.size();
    return N;
  }

  /// Bitmask with one bit per acceptance condition.
  uint64_t fullMask() const {
    return Conditions == 64 ? ~0ULL : ((1ULL << Conditions) - 1);
  }

  State addState() {
    Adj.emplace_back();
    AcceptMask.push_back(0);
    Dirty.push_back(false);
    IndexValid = false; // the CSR row table is sized by numStates
    return numStates() - 1;
  }

  /// Adds \p N fresh states, returning the first id.
  State addStates(uint32_t N) {
    State First = numStates();
    for (uint32_t I = 0; I < N; ++I)
      addState();
    return First;
  }

  void addInitial(State S) {
    assert(S < numStates() && "unknown state");
    Initial.insert(S);
  }

  const StateSet &initials() const { return Initial; }

  /// Marks \p S accepting for condition \p Cond.
  void setAccepting(State S, uint32_t Cond = 0) {
    assert(S < numStates() && Cond < Conditions && "out of range");
    AcceptMask[S] |= 1ULL << Cond;
  }

  void setAcceptMask(State S, uint64_t Mask) {
    assert(S < numStates() && (Mask & ~fullMask()) == 0 && "bad mask");
    AcceptMask[S] = Mask;
  }

  uint64_t acceptMask(State S) const {
    assert(S < numStates() && "unknown state");
    return AcceptMask[S];
  }

  /// \returns true when \p S is in every acceptance set.
  bool isAcceptingAll(State S) const { return acceptMask(S) == fullMask(); }

  /// Adds the transition. O(1): duplicates are deduplicated lazily (first
  /// occurrence wins) when the adjacency is next observed.
  void addTransition(State From, Symbol Sym, State To) {
    assert(From < numStates() && To < numStates() && Sym < Symbols &&
           "transition out of range");
    Adj[From].push_back({Sym, To});
    if (!Dirty[From]) {
      Dirty[From] = true;
      DirtyStates.push_back(From);
    }
    IndexValid = false;
  }

  /// The deduplicated out-arcs of \p S in first-insertion order.
  const std::vector<Arc> &arcsFrom(State S) const {
    assert(S < numStates() && "unknown state");
    flushDedup();
    return Adj[S];
  }

  /// Half-open range of the \p Sym-successors of \p S, in first-insertion
  /// order. Valid until the next mutation.
  std::pair<const State *, const State *> successorsSpan(State S,
                                                         Symbol Sym) const {
    assert(S < numStates() && Sym < Symbols && "query out of range");
    ensureIndex();
    size_t Row = static_cast<size_t>(S) * Symbols + Sym;
    const State *Base = Csr.Targets.data();
    return {Base + Csr.Row[Row], Base + Csr.Row[Row + 1]};
  }

  /// Calls \p Fn(State) for every \p Sym-successor of \p S. Allocation-free.
  template <typename Fn>
  void forEachSuccessor(State S, Symbol Sym, Fn &&F) const {
    auto [B, E] = successorsSpan(S, Sym);
    for (; B != E; ++B)
      F(*B);
  }

  /// Appends the \p Sym-successors of \p S to \p Out. Allocation-free when
  /// \p Out has capacity.
  void successorsInto(State S, Symbol Sym, std::vector<State> &Out) const {
    auto [B, E] = successorsSpan(S, Sym);
    Out.insert(Out.end(), B, E);
  }

  /// All \p Sym-successors of \p S (allocating; prefer successorsSpan /
  /// forEachSuccessor / successorsInto on hot paths).
  std::vector<State> successors(State S, Symbol Sym) const {
    auto [B, E] = successorsSpan(S, Sym);
    return std::vector<State>(B, E);
  }

  /// All successors of \p S over any symbol (the paper's post(q)).
  StateSet post(State S) const {
    // Collect then normalize once: repeated sorted insertion is O(d^2) for
    // high-out-degree states.
    const std::vector<Arc> &Arcs = arcsFrom(S);
    std::vector<State> Out;
    Out.reserve(Arcs.size());
    for (const Arc &A : Arcs)
      Out.push_back(A.To);
    return StateSet(std::move(Out));
  }

  /// Builds the (state, symbol) CSR successor index now if it is stale.
  /// Queries call this implicitly; call it explicitly before sharing a
  /// const Buchi across threads.
  void ensureIndex() const {
    if (!IndexValid)
      buildIndex();
  }

  /// \returns true when every state has a successor on every symbol.
  bool isComplete() const;

  /// \returns true when there is at most one initial state and at most one
  /// successor per state and symbol.
  bool isDeterministic() const;

  /// States reachable from the initial states.
  StateSet reachableStates() const;

  /// Multi-line dump for debugging.
  std::string str() const;

private:
  uint32_t Symbols;
  uint32_t Conditions;
  /// Raw adjacency in insertion order; may transiently hold duplicates
  /// until flushDedup() runs (mutable: dedup and the CSR are lazy caches
  /// refreshed from const accessors).
  mutable std::vector<std::vector<Arc>> Adj;
  std::vector<uint64_t> AcceptMask;
  StateSet Initial;

  /// States with arcs appended since the last dedup flush.
  mutable std::vector<bool> Dirty;
  mutable std::vector<State> DirtyStates;

  /// CSR over (state, symbol): row r = S * Symbols + Sym holds the targets
  /// Targets[Row[r] .. Row[r+1]) in first-insertion order.
  struct CsrIndex {
    std::vector<uint32_t> Row;
    std::vector<State> Targets;
  };
  mutable CsrIndex Csr;
  mutable bool IndexValid = false;

  /// Deduplicates the adjacency of every dirty state, keeping the first
  /// occurrence of each (Sym, To) in insertion order. The common "nothing
  /// pending" case must stay inline: arcsFrom sits in N^2 fixpoint loops.
  void flushDedup() const {
    if (!DirtyStates.empty())
      flushDedupSlow();
  }

  void flushDedupSlow() const;

  void buildIndex() const;
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_BUCHI_H
