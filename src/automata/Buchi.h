//===- automata/Buchi.h - (Generalized) Büchi automata --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit generalized Büchi automata over a dense symbol alphabet, as in
/// Section 2 of the paper. A GBA carries up to 64 acceptance conditions,
/// stored as a per-state bitmask; a plain BA is the k = 1 case. The
/// analysis keeps the remaining-paths automaton generalized because GBA
/// products are smaller and intersect more cheaply than degeneralized BAs
/// (the paper's footnote at the start of Section 4).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_BUCHI_H
#define TERMCHECK_AUTOMATA_BUCHI_H

#include "automata/StateSet.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace termcheck {

/// An explicit GBA with bitmask acceptance.
class Buchi {
public:
  /// One labeled transition out of a state.
  struct Arc {
    Symbol Sym;
    State To;
    bool operator==(const Arc &O) const {
      return Sym == O.Sym && To == O.To;
    }
  };

  /// Creates an automaton over \p NumSymbols symbols with \p NumConditions
  /// acceptance conditions (1..64).
  explicit Buchi(uint32_t NumSymbols, uint32_t NumConditions = 1)
      : Symbols(NumSymbols), Conditions(NumConditions) {
    assert(NumConditions >= 1 && NumConditions <= 64 &&
           "acceptance conditions must fit a 64-bit mask");
  }

  uint32_t numSymbols() const { return Symbols; }
  uint32_t numConditions() const { return Conditions; }
  uint32_t numStates() const { return static_cast<uint32_t>(Adj.size()); }

  size_t numTransitions() const {
    size_t N = 0;
    for (const auto &Arcs : Adj)
      N += Arcs.size();
    return N;
  }

  /// Bitmask with one bit per acceptance condition.
  uint64_t fullMask() const {
    return Conditions == 64 ? ~0ULL : ((1ULL << Conditions) - 1);
  }

  State addState() {
    Adj.emplace_back();
    AcceptMask.push_back(0);
    return numStates() - 1;
  }

  /// Adds \p N fresh states, returning the first id.
  State addStates(uint32_t N) {
    State First = numStates();
    for (uint32_t I = 0; I < N; ++I)
      addState();
    return First;
  }

  void addInitial(State S) {
    assert(S < numStates() && "unknown state");
    Initial.insert(S);
  }

  const StateSet &initials() const { return Initial; }

  /// Marks \p S accepting for condition \p Cond.
  void setAccepting(State S, uint32_t Cond = 0) {
    assert(S < numStates() && Cond < Conditions && "out of range");
    AcceptMask[S] |= 1ULL << Cond;
  }

  void setAcceptMask(State S, uint64_t Mask) {
    assert(S < numStates() && (Mask & ~fullMask()) == 0 && "bad mask");
    AcceptMask[S] = Mask;
  }

  uint64_t acceptMask(State S) const {
    assert(S < numStates() && "unknown state");
    return AcceptMask[S];
  }

  /// \returns true when \p S is in every acceptance set.
  bool isAcceptingAll(State S) const { return acceptMask(S) == fullMask(); }

  /// Adds the transition, deduplicating.
  void addTransition(State From, Symbol Sym, State To) {
    assert(From < numStates() && To < numStates() && Sym < Symbols &&
           "transition out of range");
    for (const Arc &A : Adj[From])
      if (A.Sym == Sym && A.To == To)
        return;
    Adj[From].push_back({Sym, To});
  }

  const std::vector<Arc> &arcsFrom(State S) const {
    assert(S < numStates() && "unknown state");
    return Adj[S];
  }

  /// All \p Sym-successors of \p S.
  std::vector<State> successors(State S, Symbol Sym) const {
    std::vector<State> Out;
    for (const Arc &A : Adj[S])
      if (A.Sym == Sym)
        Out.push_back(A.To);
    return Out;
  }

  /// All successors of \p S over any symbol (the paper's post(q)).
  StateSet post(State S) const {
    StateSet Out;
    for (const Arc &A : Adj[S])
      Out.insert(A.To);
    return Out;
  }

  /// \returns true when every state has a successor on every symbol.
  bool isComplete() const;

  /// \returns true when there is at most one initial state and at most one
  /// successor per state and symbol.
  bool isDeterministic() const;

  /// States reachable from the initial states.
  StateSet reachableStates() const;

  /// Multi-line dump for debugging.
  std::string str() const;

private:
  uint32_t Symbols;
  uint32_t Conditions;
  std::vector<std::vector<Arc>> Adj;
  std::vector<uint64_t> AcceptMask;
  StateSet Initial;
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_BUCHI_H
