//===- automata/StateSet.h - Sorted sets of automaton states --*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small sorted-vector sets of state ids. These are the N/C/S/B components
/// of NCSB macro-states (Section 5) and the subset-construction states of
/// the deterministic and finite-trace complements, so the operations that
/// matter are union, difference, intersection, subset tests (the
/// subsumption relations of Section 6 are component-wise supersets), and
/// cheap hashing for macro-state interning.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_STATESET_H
#define TERMCHECK_AUTOMATA_STATESET_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace termcheck {

/// Index of an automaton state.
using State = uint32_t;

/// Index of an alphabet symbol.
using Symbol = uint32_t;

/// An immutable-ish sorted set of states.
class StateSet {
public:
  StateSet() = default;
  StateSet(std::initializer_list<State> Init) : Elems(Init) { normalize(); }
  explicit StateSet(std::vector<State> V) : Elems(std::move(V)) {
    normalize();
  }

  bool empty() const { return Elems.empty(); }
  size_t size() const { return Elems.size(); }
  const std::vector<State> &elems() const { return Elems; }

  bool contains(State S) const {
    return std::binary_search(Elems.begin(), Elems.end(), S);
  }

  /// Inserts \p S, keeping the set sorted.
  void insert(State S) {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), S);
    if (It == Elems.end() || *It != S)
      Elems.insert(It, S);
  }

  /// Removes \p S if present.
  void erase(State S) {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), S);
    if (It != Elems.end() && *It == S)
      Elems.erase(It);
  }

  StateSet unionWith(const StateSet &O) const {
    StateSet R;
    R.Elems.reserve(Elems.size() + O.Elems.size());
    std::set_union(Elems.begin(), Elems.end(), O.Elems.begin(), O.Elems.end(),
                   std::back_inserter(R.Elems));
    return R;
  }

  // In-place variants for hot loops: the result set is overwritten and its
  // capacity reused, so steady-state iterations allocate nothing. The
  // result must not alias either operand.

  /// *this = A cup B. \p B may be any sorted duplicate-free range.
  void assignUnion(const StateSet &A, const StateSet &B) {
    assignUnion(A, B.Elems);
  }
  void assignUnion(const StateSet &A, const std::vector<State> &B) {
    assert(this != &A && "in-place union aliases its operand");
    Elems.clear();
    Elems.reserve(A.Elems.size() + B.size());
    std::set_union(A.Elems.begin(), A.Elems.end(), B.begin(), B.end(),
                   std::back_inserter(Elems));
  }

  /// *this = A cap B.
  void assignIntersection(const StateSet &A, const StateSet &B) {
    assert(this != &A && this != &B && "in-place intersection aliases");
    Elems.clear();
    std::set_intersection(A.Elems.begin(), A.Elems.end(), B.Elems.begin(),
                          B.Elems.end(), std::back_inserter(Elems));
  }

  /// *this = A \ B. \p B may be any sorted duplicate-free range.
  void assignDifference(const StateSet &A, const StateSet &B) {
    assert(this != &A && this != &B && "in-place difference aliases");
    Elems.clear();
    std::set_difference(A.Elems.begin(), A.Elems.end(), B.Elems.begin(),
                        B.Elems.end(), std::back_inserter(Elems));
  }

  /// *this = the set of \p Raw's elements (sorts and dedups a scratch
  /// buffer into the reused storage).
  void assignNormalized(const std::vector<State> &Raw) {
    Elems.assign(Raw.begin(), Raw.end());
    normalize();
  }

  void clear() { Elems.clear(); }

  StateSet intersectWith(const StateSet &O) const {
    StateSet R;
    std::set_intersection(Elems.begin(), Elems.end(), O.Elems.begin(),
                          O.Elems.end(), std::back_inserter(R.Elems));
    return R;
  }

  StateSet minus(const StateSet &O) const {
    StateSet R;
    std::set_difference(Elems.begin(), Elems.end(), O.Elems.begin(),
                        O.Elems.end(), std::back_inserter(R.Elems));
    return R;
  }

  bool intersects(const StateSet &O) const {
    auto A = Elems.begin(), B = O.Elems.begin();
    while (A != Elems.end() && B != O.Elems.end()) {
      if (*A == *B)
        return true;
      if (*A < *B)
        ++A;
      else
        ++B;
    }
    return false;
  }

  /// \returns true when this set is a subset of \p O.
  bool subsetOf(const StateSet &O) const {
    return std::includes(O.Elems.begin(), O.Elems.end(), Elems.begin(),
                         Elems.end());
  }

  /// \returns true when this set is a superset of \p O.
  bool supersetOf(const StateSet &O) const { return O.subsetOf(*this); }

  bool operator==(const StateSet &O) const { return Elems == O.Elems; }
  bool operator!=(const StateSet &O) const { return !(*this == O); }

  size_t hash() const {
    size_t H = 0x9e3779b97f4a7c15ULL ^ Elems.size();
    for (State S : Elems)
      H = (H * 0x100000001b3ULL) ^ S;
    return H;
  }

  /// Rendering such as "{1,4,7}".
  std::string str() const {
    std::string S = "{";
    for (size_t I = 0; I < Elems.size(); ++I) {
      if (I != 0)
        S += ",";
      S += std::to_string(Elems[I]);
    }
    return S + "}";
  }

private:
  void normalize() {
    std::sort(Elems.begin(), Elems.end());
    Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
  }

  std::vector<State> Elems;
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_STATESET_H
