//===- automata/ModularComplement.h - Mix-and-match complement -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Modular ("mix-and-match") Büchi complementation. Every accepting run of
/// a BA is eventually trapped in exactly one accepting SCC D, so
///
///     L(A) = union over accepting D of L_D,
///
/// where L_D is the set of words with an accepting run trapped in D.
/// Restricting A to the states co-reachable to the accepting states of D
/// (acceptance narrowed to those states) yields a partial automaton A_D
/// with L(A_D) = L_D, and the restriction is exactly what makes a cheap
/// construction applicable: the co-reach cut drops everything downstream of
/// D, so a semideterministic SCC becomes a genuine SDBA, and an inert-weak
/// SCC collapses to the single-universal-state shape of the finite-trace
/// complement. The complement is then the intersection
///
///     complement(L(A)) = intersection over D of complement(L(A_D)),
///
/// computed lazily as a synchronized product of the per-component partial
/// complements with a degeneralization counter (same convention as
/// Ops.cpp's degeneralize: layer j < K waits for component j, layer K is
/// the sole accepting layer).
///
/// Components of the same class are first grouped into one partial
/// complement; when the grouped automaton misses its engine's precondition
/// (e.g. two semideterministic SCCs connected through a nondeterministic
/// corridor) the group is split back into per-SCC components. Engines are
/// resolved uniformly per component: inert-weak collapse -> finite-trace;
/// else deterministic-after-completion -> Kurshan DBA; else SDBA -> NCSB;
/// else small enough -> rank; else the whole build fails and the caller
/// falls back to a monolithic construction.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_MODULARCOMPLEMENT_H
#define TERMCHECK_AUTOMATA_MODULARCOMPLEMENT_H

#include "automata/ComplementOracle.h"
#include "automata/Interner.h"
#include "automata/Ncsb.h"
#include "automata/SccClassify.h"
#include "automata/Sdba.h"

#include <memory>
#include <optional>

namespace termcheck {

/// Which construction complements one component.
enum class ModularEngine : uint8_t { FiniteTrace, Dba, Ncsb, Rank };

/// \returns a stable lowercase name (statistics, traces, tests).
const char *modularEngineName(ModularEngine E);

/// How one partial complement was built (introspection for tests, benches,
/// and run reports).
struct ModularComponentInfo {
  SccClass Class;       ///< class of the SCC group behind the component
  ModularEngine Engine; ///< construction complementing it
  uint32_t InputStates; ///< states of the engine's input automaton
};

/// Knobs of the modular builder.
struct ModularBuildOptions {
  /// NCSB variant used for semideterministic components.
  NcsbVariant Ncsb = NcsbVariant::Lazy;
};

/// A tuple of component macro-states plus the degeneralization layer.
struct ModularMacroState {
  std::vector<State> Parts; ///< one macro-state id per component
  uint32_t Layer = 0;       ///< 0..K-1 waiting, K accepting

  bool operator==(const ModularMacroState &O) const {
    return Layer == O.Layer && Parts == O.Parts;
  }

  size_t hash() const {
    size_t H = 0x9e3779b97f4a7c15ULL ^ Layer;
    for (State S : Parts)
      H = (H * 0x100000001b3ULL) ^ S;
    return H;
  }
};

/// The synchronized product of the per-component partial complements.
///
/// The language of a tuple is the intersection of its components'
/// languages, independently of the counter layer, so subsumption is the
/// component-wise oracle relation with the layer ignored -- sound and
/// strictly stronger than tuple equality. With zero components (the input
/// has no accepting SCC, hence an empty language) the oracle is the
/// one-state universal automaton.
class ModularComplementOracle : public ComplementOracle {
public:
  uint32_t numSymbols() const override { return Symbols; }
  std::vector<State> initialStates() override;
  void successors(State S, Symbol Sym, std::vector<State> &Out) override;
  bool isAccepting(State S) override {
    return Tuples[S].Layer == Components.size();
  }
  /// Tuple states plus every component's own discoveries, so state-budget
  /// caps see the construction's real footprint.
  size_t numStatesDiscovered() const override;
  bool subsumedBy(State Sub, State Sup) const override;

  /// Forwards the stride to every component (their successor enumerations,
  /// not the tuple loop, are where the time goes).
  void setPollStride(uint32_t Stride) override;

  size_t numComponents() const { return Components.size(); }
  const std::vector<ModularComponentInfo> &componentInfo() const {
    return Info;
  }
  /// The interned tuple behind a dense id (stable reference).
  const ModularMacroState &macroState(State S) const { return Tuples[S]; }

private:
  friend std::unique_ptr<ModularComplementOracle>
  buildModularComplement(const Buchi &A, const ModularBuildOptions &Opts);

  /// One partial complement. Held by unique_ptr so the oracle's reference
  /// into Partial/Prepared stays valid as the vector grows.
  struct Part {
    Buchi Partial;                ///< engine input (owned; completed for
                                  ///< DBA/rank, collapsed for finite-trace)
    std::optional<Sdba> Prepared; ///< NCSB input (references kept by Oracle)
    std::unique_ptr<ComplementOracle> Oracle;
    ModularEngine Engine = ModularEngine::Rank;
    SccClass Class = SccClass::General;

    explicit Part(Buchi B) : Partial(std::move(B)) {}
  };

  explicit ModularComplementOracle(uint32_t Symbols) : Symbols(Symbols) {}

  /// The degeneralization counter step (Ops.cpp convention): reset to 0
  /// from the accepting layer, then skip every component already accepting
  /// in the target tuple.
  uint32_t advance(uint32_t Layer, const std::vector<State> &Parts);

  uint32_t Symbols;
  std::vector<std::unique_ptr<Part>> Components;
  std::vector<ModularComponentInfo> Info;
  Interner<ModularMacroState> Tuples;

  /// Scratch hoisted out of successors(): per-component successor lists,
  /// the cross-product odometer, and the candidate tuple probed against
  /// the interner (copied into the arena only on a miss).
  std::vector<std::vector<State>> SuccLists;
  std::vector<size_t> Odometer;
  ModularMacroState Scratch;
};

/// Builds the modular complement of \p A (one acceptance condition).
/// \returns nullptr when some component fits no engine even after
/// splitting (a too-large general SCC); the caller then falls back to a
/// monolithic construction. A successful build bumps the perf.modular_*
/// counters.
std::unique_ptr<ModularComplementOracle>
buildModularComplement(const Buchi &A, const ModularBuildOptions &Opts = {});

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_MODULARCOMPLEMENT_H
