//===- automata/Difference.h - On-the-fly GBA \ BA difference -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4's difference construction: given a GBA A (the program paths
/// not yet certified) and a complement oracle for a BA B (the module just
/// certified), build the useful part of D with L(D) = L(A) \ L(B).
/// The three optimizations of the paper are all here:
///
///  1. the complement is built on the fly, only where the product visits it
///     (ComplementOracle),
///  2. useless states are removed during the search with Algorithm 1
///     (UselessStateRemover), and
///  3. the emp set is maintained as a subsumption antichain using the
///     oracle's relation (Section 6), so macro-states subsumed by a known
///     useless macro-state are pruned without exploration.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_DIFFERENCE_H
#define TERMCHECK_AUTOMATA_DIFFERENCE_H

#include "automata/ComplementOracle.h"
#include "automata/Emptiness.h"
#include "automata/Scc.h"
#include "support/ResourceGuard.h"

namespace termcheck {

class Trace;

/// Tuning knobs for the difference construction.
struct DifferenceOptions {
  /// Use the subsumption antichain for the emp set (Section 6). When
  /// false, emp is an exact set (plain Algorithm 1).
  bool UseSubsumption = true;
  /// Which engine answers the emptiness question. GaiserSchwoon is the
  /// historical Algorithm 1 path. Couvreur runs the on-stack-cutoff SCC
  /// search first: an empty verdict skips Algorithm 1 and materialization
  /// entirely, a nonempty one falls through to the (arc-memo-warm)
  /// materializing path unless EmptinessOnly is set. Auto picks Couvreur
  /// for emptiness-only queries and GaiserSchwoon otherwise (the
  /// materialization needs Algorithm 1's useful/useless classification
  /// anyway, so a pre-pass is only worth it when explicitly requested).
  EmptinessStrategy Emptiness = EmptinessStrategy::Auto;
  /// The caller only needs IsEmpty (language-inclusion queries): skip the
  /// materialization, and let the engines stop at the first accepting SCC.
  bool EmptinessOnly = false;
  /// Reconstruct an accepting product lasso into Result.Witness when the
  /// difference is decided nonempty by an emptiness engine (EmptinessOnly
  /// or the Couvreur pre-pass). The word is over A's alphabet and lies in
  /// L(A) \ L(B).
  bool WantWitness = false;
  /// Optional trace handle (non-owning); the Couvreur pre-pass emits an
  /// "emptiness.couvreur" span into it.
  Trace *Tracer = nullptr;
  /// Optional budget hook; when it returns true the construction aborts
  /// and the result carries Aborted = true.
  std::function<bool()> ShouldAbort;
  /// Hard cap on live states (product states plus complement macro-states)
  /// of one construction, mirroring RankComplementOracle::MaxInputStates'
  /// role for the rank complement; 0 = unlimited. Crossing it aborts the
  /// construction with Aborted and HitStateCap both set, so the caller can
  /// degrade (word-only subtraction) instead of stopping the whole run.
  size_t MaxProductStates = 0;
  /// Optional shared resource budget (non-owning). The construction aborts
  /// when the guard is exhausted or its remaining headroom cannot hold the
  /// live states, and charges the guard for everything it materialized
  /// when it completes.
  ResourceGuard *Guard = nullptr;
};

/// Result of a difference construction.
struct DifferenceResult {
  /// The useful part of A x B-bar, with numConditions(A) + 1 acceptance
  /// conditions (the extra one is the complement's).
  Buchi D;
  /// True when L(A) subseteq L(B) (the difference is empty).
  bool IsEmpty = true;
  /// Product states whose successors were expanded.
  size_t ProductStatesExplored = 0;
  /// Macro-states the complement oracle materialized on the way.
  size_t ComplementStatesDiscovered = 0;
  /// True when the run hit any budget (ShouldAbort, MaxProductStates, or
  /// the ResourceGuard); D is then meaningless.
  bool Aborted = false;
  /// True when the abort was a state-count cap (MaxProductStates or the
  /// guard's headroom), as opposed to the sticky deadline/cancellation
  /// hook: the caller may retry with a cheaper construction.
  bool HitStateCap = false;
  /// Macro-states pruned without exploration because a subsumping member
  /// of the emp antichain was already known useless (Section 6). Zero when
  /// subsumption is off.
  size_t SubsumptionPruned = 0;
  /// Product arcs memoized by the on-the-fly product: each is computed once
  /// during the search and replayed from the cache during materialization.
  size_t ArcsMemoized = 0;
  /// Stable name of the engine that decided IsEmpty ("gaiser_schwoon" or
  /// "couvreur"); surfaced in the run report.
  const char *EmptinessEngine = "gaiser_schwoon";
  /// SCCs closed by the Couvreur engine (zero on the Algorithm 1 path).
  size_t CouvreurSccs = 0;
  /// Successors the Couvreur engine pruned (on-stack plus closed cutoffs).
  size_t CouvreurCutoffs = 0;
  /// Accepting product lasso (present when WantWitness was set and an
  /// emptiness engine decided nonempty).
  std::optional<LassoWord> Witness;
};

/// Computes the useful part of L(A) \ L(B-bar-source). \p A provides k
/// acceptance conditions; the result has k + 1.
DifferenceResult difference(const Buchi &A, ComplementOracle &BC,
                            const DifferenceOptions &Opts = {});

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_DIFFERENCE_H
