//===- automata/Emptiness.h - Pluggable Buchi emptiness engines -*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared emptiness-engine interface extracted from the Gaiser-Schwoon
/// path of Scc.h. Every lasso hunt and every certified-module subtraction
/// bottoms out in a GBA emptiness query over an implicit product, so the
/// engine is pluggable:
///
/// * GaiserSchwoonEmptiness -- Algorithm 1 (UselessStateRemover) with
///   StopAtFirstAccepting, the historical path. Subsumption applies only at
///   the frontier, through the IsKnownEmpty antichain hooks.
/// * CouvreurEmptiness (CouvreurEmptiness.h) -- a single-pass iterative
///   Couvreur/Tarjan SCC search that additionally prunes successors
///   simulation-subsumed by a state already ON the DFS stack, the
///   check_simul_less trick of kofola's emptiness_check (Havlena et al.
///   2023); Fogarty-Vardi 2011 report the same subsumption-inside-search
///   move as decisive for Ramsey/rank-based termination tools.
///
/// Both engines answer through EmptinessResult, including an optional
/// certified witness lasso so --witness and the nontermination replay work
/// regardless of which engine decided nonemptiness.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_EMPTINESS_H
#define TERMCHECK_AUTOMATA_EMPTINESS_H

#include "automata/Scc.h"

#include <string_view>

namespace termcheck {

/// Which emptiness engine a difference/analysis runs (the --emptiness CLI
/// axis; AnalyzerOptions::Emptiness).
enum class EmptinessStrategy : uint8_t {
  /// Algorithm 1 with StopAtFirstAccepting (the historical path).
  GaiserSchwoon,
  /// Couvreur/Tarjan with on-stack simulation cutoffs.
  Couvreur,
  /// GaiserSchwoon for materializing differences (whose useful/useless
  /// classification the materialization needs anyway), Couvreur for
  /// emptiness-only queries where the early cutoffs are a strict win.
  Auto,
};

const char *emptinessStrategyName(EmptinessStrategy S);

/// Inverse of emptinessStrategyName. \returns false (leaving \p S
/// untouched) when \p Name is not a stable strategy name.
bool emptinessStrategyFromName(std::string_view Name, EmptinessStrategy &S);

/// Knobs shared by every emptiness engine. All hooks are optional.
struct EmptinessOptions {
  /// Budget hook, polled every PollStride expansions; returning true aborts
  /// (Result.Aborted set, IsEmpty unreliable).
  std::function<bool()> ShouldAbort;
  /// Expansions between ShouldAbort polls (mirrors UselessStateRemover).
  uint32_t PollStride = 256;

  /// Language inclusion: SubsumedBy(Sub, Sup) => L(Sub) subseteq L(Sup).
  /// Consulted by Couvreur's cutoffs; engines must tolerate it being
  /// reflexive and are expected to supply their own syntactic fast path.
  std::function<bool(State, State)> SubsumedBy;
  /// True when SubsumedBy is an EARLY simulation-style preorder: along
  /// subsumed runs the subsuming run covers acceptance no later (PLDI'18
  /// Lemma 6.2; NCSB-Lazy's [=_B qualifies, plain language inclusion does
  /// NOT). The on-stack cutoff is sound only for early relations, so
  /// Couvreur enables it only under this flag; the closed-state cutoff
  /// needs just language inclusion and ignores it.
  bool SubsumptionIsEarly = false;

  /// Closed-state cutoff hooks (the Section 6 antichain): IsKnownEmpty(q)
  /// tests q against states already proved empty-language; AddKnownEmpty
  /// publishes a freshly closed empty state; ResetKnownEmpty discards the
  /// set (Couvreur calls it when a restart invalidates entries added under
  /// a provisional on-stack prune -- callers sharing the antichain beyond
  /// one check() call MUST honor it).
  std::function<bool(State)> IsKnownEmpty;
  std::function<void(State)> AddKnownEmpty;
  std::function<void()> ResetKnownEmpty;

  /// Reconstruct an accepting lasso on nonempty (Result.Witness). Engines
  /// record traversed arcs while searching, so this costs memory
  /// proportional to the explored subgraph.
  bool FindWitness = false;
};

/// Outcome of one emptiness query.
struct EmptinessResult {
  bool IsEmpty = true;
  /// Cut short by ShouldAbort; IsEmpty is then unreliable.
  bool Aborted = false;
  /// Distinct states whose successors were expanded.
  size_t StatesExplored = 0;
  /// SCCs fully closed (popped empty) -- Couvreur only.
  size_t SccsClosed = 0;
  /// Successors pruned against an on-stack state -- Couvreur only.
  size_t OnStackCutoffs = 0;
  /// Successors pruned against a closed (known-empty) state.
  size_t ClosedCutoffs = 0;
  /// Times the search restarted because an SCC merge invalidated a
  /// provisional on-stack prune -- Couvreur only (expected rare).
  size_t CutoffRestarts = 0;
  /// Accepting lasso (present when !IsEmpty and FindWitness was set).
  std::optional<LassoWord> Witness;
};

/// A pluggable emptiness engine over an implicit GBA.
class EmptinessEngine {
public:
  virtual ~EmptinessEngine() = default;
  /// Stable identifier surfaced in run reports ("gaiser_schwoon", ...).
  virtual const char *name() const = 0;
  virtual EmptinessResult check(GbaSource &Src,
                                const EmptinessOptions &Opts) = 0;
};

/// Algorithm 1 with StopAtFirstAccepting, wrapped behind the shared
/// interface. IsKnownEmpty/AddKnownEmpty map onto the remover's
/// useless-set hooks; SubsumedBy/SubsumptionIsEarly are unused (the
/// remover has no in-search cutoff).
class GaiserSchwoonEmptiness : public EmptinessEngine {
public:
  const char *name() const override { return "gaiser_schwoon"; }
  EmptinessResult check(GbaSource &Src, const EmptinessOptions &Opts) override;
};

/// Emptiness of an explicit GBA under strategy \p S. For Couvreur (and
/// Auto, which resolves to Couvreur here -- an explicit query is always
/// emptiness-only) a direct-simulation preorder is computed as the cutoff
/// relation while the automaton is at most SimulationStateCap states
/// (the relation is quadratic); beyond the cap Couvreur still runs, with
/// the closed-state cutoff only. Fields already set in \p Base (hooks,
/// FindWitness, budget) are preserved.
inline constexpr uint32_t SimulationStateCap = 2048;
EmptinessResult checkEmptiness(const Buchi &A, EmptinessStrategy S,
                               EmptinessOptions Base = {});

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_EMPTINESS_H
