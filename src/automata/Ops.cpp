//===- automata/Ops.cpp - Basic automata operations -----------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Ops.h"

#include "automata/DbaComplement.h"
#include "automata/Difference.h"
#include "automata/Interner.h"
#include "automata/Ncsb.h"
#include "automata/Sdba.h"

#include <cassert>
#include <deque>

using namespace termcheck;

Buchi termcheck::completeWithSink(const Buchi &A) {
  // First check completeness to avoid a useless copy with a dead sink.
  bool NeedsSink = !A.isComplete();
  Buchi Out(A.numSymbols(), A.numConditions());
  Out.addStates(A.numStates());
  for (State S = 0; S < A.numStates(); ++S) {
    Out.setAcceptMask(S, A.acceptMask(S));
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(S, Arc.Sym, Arc.To);
  }
  for (State S : A.initials().elems())
    Out.addInitial(S);
  if (!NeedsSink)
    return Out;
  State Sink = Out.addState();
  for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym)
    Out.addTransition(Sink, Sym, Sink);
  // isComplete() above already built A's transition index, so per-(state,
  // symbol) emptiness is a span check instead of a scan over arcsFrom.
  for (State S = 0; S < A.numStates(); ++S) {
    for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym) {
      auto [B, E] = A.successorsSpan(S, Sym);
      if (B == E)
        Out.addTransition(S, Sym, Sink);
    }
  }
  return Out;
}

Buchi termcheck::restrictToStates(const Buchi &A, const StateSet &Keep) {
  Buchi Out(A.numSymbols(), A.numConditions());
  constexpr State Dropped = ~State(0);
  std::vector<State> Map(A.numStates(), Dropped);
  for (State S : Keep.elems()) {
    State Fresh = Out.addState();
    Out.setAcceptMask(Fresh, A.acceptMask(S));
    Map[S] = Fresh;
  }
  for (State S : Keep.elems()) {
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      if (Map[Arc.To] != Dropped)
        Out.addTransition(Map[S], Arc.Sym, Map[Arc.To]);
  }
  for (State S : A.initials().elems())
    if (Map[S] != Dropped)
      Out.addInitial(Map[S]);
  return Out;
}

Buchi termcheck::trim(const Buchi &A) {
  return restrictToStates(A, A.reachableStates());
}

Buchi termcheck::dropFullConditions(const Buchi &A) {
  // A condition is full when every state satisfies it.
  uint64_t FullConds = A.fullMask();
  for (State S = 0; S < A.numStates(); ++S)
    FullConds &= A.acceptMask(S);
  if (FullConds == 0)
    return A;

  // Build the index remap for the surviving conditions.
  std::vector<uint32_t> KeptBits;
  for (uint32_t C = 0; C < A.numConditions(); ++C)
    if (!(FullConds & (1ULL << C)))
      KeptBits.push_back(C);
  if (KeptBits.empty())
    KeptBits.push_back(0); // fully trivial acceptance: keep one condition

  Buchi Out(A.numSymbols(), static_cast<uint32_t>(KeptBits.size()));
  Out.addStates(A.numStates());
  for (State S = 0; S < A.numStates(); ++S) {
    uint64_t Mask = 0;
    for (size_t I = 0; I < KeptBits.size(); ++I)
      if (A.acceptMask(S) & (1ULL << KeptBits[I]))
        Mask |= 1ULL << I;
    Out.setAcceptMask(S, Mask);
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(S, Arc.Sym, Arc.To);
  }
  for (State S : A.initials().elems())
    Out.addInitial(S);
  return Out;
}

Buchi termcheck::degeneralize(const Buchi &A) {
  const uint32_t K = A.numConditions();
  if (K == 1)
    return A;
  // Layers 0..K-1 await condition i; layer K marks a completed round and is
  // the (only) accepting layer. Successor layers advance through every
  // condition the target state satisfies.
  Buchi Out(A.numSymbols(), 1);
  PairInterner Index;
  auto Intern = [&](State Q, uint32_t Layer) {
    auto [Fresh, Inserted] = Index.intern(Q, Layer);
    if (Inserted) {
      State Added = Out.addState();
      assert(Added == Fresh && "pair ids must track output states");
      (void)Added;
      if (Layer == K)
        Out.setAccepting(Fresh);
    }
    return Fresh;
  };
  auto Advance = [&](uint32_t Layer, State Target) {
    uint32_t J = Layer == K ? 0 : Layer;
    while (J < K && (A.acceptMask(Target) & (1ULL << J)))
      ++J;
    return J;
  };
  std::deque<State> Work;
  for (State Q : A.initials().elems()) {
    State S = Intern(Q, Advance(K, Q));
    Out.addInitial(S);
    Work.push_back(S);
  }
  std::vector<bool> Expanded;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    if (S < Expanded.size() && Expanded[S])
      continue;
    if (S >= Expanded.size())
      Expanded.resize(S + 1, false);
    Expanded[S] = true;
    auto [Q, Layer] = Index.get(S);
    for (const Buchi::Arc &Arc : A.arcsFrom(Q)) {
      State T = Intern(Arc.To, Advance(Layer, Arc.To));
      Out.addTransition(S, Arc.Sym, T);
      if (T >= Expanded.size() || !Expanded[T])
        Work.push_back(T);
    }
  }
  return Out;
}

Buchi termcheck::intersect(const Buchi &A, const Buchi &B) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  uint32_t Conds = A.numConditions() + B.numConditions();
  assert(Conds <= 64 && "too many acceptance conditions");
  Buchi Out(A.numSymbols(), Conds);
  B.ensureIndex(); // the inner loop below queries B per (state, symbol)

  PairInterner Index;
  auto Intern = [&](State P, State Q) {
    auto [Fresh, Inserted] = Index.intern(P, Q);
    if (Inserted) {
      State Added = Out.addState();
      assert(Added == Fresh && "pair ids must track output states");
      (void)Added;
      uint64_t Mask =
          A.acceptMask(P) | (B.acceptMask(Q) << A.numConditions());
      Out.setAcceptMask(Fresh, Mask);
    }
    return Fresh;
  };

  std::deque<State> Work;
  for (State P : A.initials().elems()) {
    for (State Q : B.initials().elems()) {
      State S = Intern(P, Q);
      Out.addInitial(S);
      Work.push_back(S);
    }
  }
  std::vector<bool> Expanded;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    if (S < Expanded.size() && Expanded[S])
      continue;
    if (S >= Expanded.size())
      Expanded.resize(S + 1, false);
    Expanded[S] = true;
    auto [P, Q] = Index.get(S);
    for (const Buchi::Arc &ArcA : A.arcsFrom(P)) {
      // Matching B-arcs come from the CSR row for (Q, ArcA.Sym) instead of
      // rescanning all of Q's arcs per A-arc.
      B.forEachSuccessor(Q, ArcA.Sym, [&](State BTo) {
        State T = Intern(ArcA.To, BTo);
        Out.addTransition(S, ArcA.Sym, T);
        if (T >= Expanded.size() || !Expanded[T])
          Work.push_back(T);
      });
    }
  }
  return Out;
}

Buchi termcheck::unionBa(const Buchi &A, const Buchi &B) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  assert(A.numConditions() == 1 && B.numConditions() == 1 &&
         "union expects plain BAs");
  Buchi Out(A.numSymbols(), 1);
  State BaseA = Out.addStates(A.numStates());
  State BaseB = Out.addStates(B.numStates());
  for (State S = 0; S < A.numStates(); ++S) {
    Out.setAcceptMask(BaseA + S, A.acceptMask(S));
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(BaseA + S, Arc.Sym, BaseA + Arc.To);
  }
  for (State S = 0; S < B.numStates(); ++S) {
    Out.setAcceptMask(BaseB + S, B.acceptMask(S));
    for (const Buchi::Arc &Arc : B.arcsFrom(S))
      Out.addTransition(BaseB + S, Arc.Sym, BaseB + Arc.To);
  }
  for (State S : A.initials().elems())
    Out.addInitial(BaseA + S);
  for (State S : B.initials().elems())
    Out.addInitial(BaseB + S);
  return Out;
}

std::optional<bool> termcheck::isIncludedIn(const Buchi &A, const Buchi &B) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  // A pure language-inclusion query never needs the materialized
  // difference, so let the engine stop at the first accepting SCC (and
  // the Auto strategy run Couvreur with its on-stack cutoffs).
  DifferenceOptions Opts;
  Opts.EmptinessOnly = true;
  Buchi Complete = completeWithSink(B);
  if (Complete.isDeterministic()) {
    DbaComplementOracle O(Complete);
    return difference(A, O, Opts).IsEmpty;
  }
  std::optional<Sdba> Prepared = prepareSdba(Complete);
  if (!Prepared)
    return std::nullopt;
  NcsbOracle O(*Prepared, NcsbVariant::Lazy);
  return difference(A, O, Opts).IsEmpty;
}

std::optional<bool> termcheck::isEquivalent(const Buchi &A, const Buchi &B) {
  std::optional<bool> AB = isIncludedIn(A, B);
  if (!AB)
    return std::nullopt;
  if (!*AB)
    return false;
  std::optional<bool> BA = isIncludedIn(B, A);
  if (!BA)
    return std::nullopt;
  return *BA;
}
