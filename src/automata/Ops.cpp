//===- automata/Ops.cpp - Basic automata operations -----------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Ops.h"

#include "automata/DbaComplement.h"
#include "automata/Difference.h"
#include "automata/Ncsb.h"
#include "automata/Sdba.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace termcheck;

Buchi termcheck::completeWithSink(const Buchi &A) {
  // First check completeness to avoid a useless copy with a dead sink.
  bool NeedsSink = !A.isComplete();
  Buchi Out(A.numSymbols(), A.numConditions());
  Out.addStates(A.numStates());
  for (State S = 0; S < A.numStates(); ++S) {
    Out.setAcceptMask(S, A.acceptMask(S));
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(S, Arc.Sym, Arc.To);
  }
  for (State S : A.initials().elems())
    Out.addInitial(S);
  if (!NeedsSink)
    return Out;
  State Sink = Out.addState();
  for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym)
    Out.addTransition(Sink, Sym, Sink);
  for (State S = 0; S < A.numStates(); ++S) {
    std::vector<bool> Has(A.numSymbols(), false);
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Has[Arc.Sym] = true;
    for (Symbol Sym = 0; Sym < A.numSymbols(); ++Sym)
      if (!Has[Sym])
        Out.addTransition(S, Sym, Sink);
  }
  return Out;
}

Buchi termcheck::restrictToStates(const Buchi &A, const StateSet &Keep) {
  Buchi Out(A.numSymbols(), A.numConditions());
  std::unordered_map<State, State> Map;
  for (State S : Keep.elems()) {
    State Fresh = Out.addState();
    Out.setAcceptMask(Fresh, A.acceptMask(S));
    Map.emplace(S, Fresh);
  }
  for (State S : Keep.elems()) {
    for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
      auto It = Map.find(Arc.To);
      if (It != Map.end())
        Out.addTransition(Map.at(S), Arc.Sym, It->second);
    }
  }
  for (State S : A.initials().elems()) {
    auto It = Map.find(S);
    if (It != Map.end())
      Out.addInitial(It->second);
  }
  return Out;
}

Buchi termcheck::trim(const Buchi &A) {
  return restrictToStates(A, A.reachableStates());
}

Buchi termcheck::dropFullConditions(const Buchi &A) {
  // A condition is full when every state satisfies it.
  uint64_t FullConds = A.fullMask();
  for (State S = 0; S < A.numStates(); ++S)
    FullConds &= A.acceptMask(S);
  if (FullConds == 0)
    return A;

  // Build the index remap for the surviving conditions.
  std::vector<uint32_t> KeptBits;
  for (uint32_t C = 0; C < A.numConditions(); ++C)
    if (!(FullConds & (1ULL << C)))
      KeptBits.push_back(C);
  if (KeptBits.empty())
    KeptBits.push_back(0); // fully trivial acceptance: keep one condition

  Buchi Out(A.numSymbols(), static_cast<uint32_t>(KeptBits.size()));
  Out.addStates(A.numStates());
  for (State S = 0; S < A.numStates(); ++S) {
    uint64_t Mask = 0;
    for (size_t I = 0; I < KeptBits.size(); ++I)
      if (A.acceptMask(S) & (1ULL << KeptBits[I]))
        Mask |= 1ULL << I;
    Out.setAcceptMask(S, Mask);
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(S, Arc.Sym, Arc.To);
  }
  for (State S : A.initials().elems())
    Out.addInitial(S);
  return Out;
}

Buchi termcheck::degeneralize(const Buchi &A) {
  const uint32_t K = A.numConditions();
  if (K == 1)
    return A;
  // Layers 0..K-1 await condition i; layer K marks a completed round and is
  // the (only) accepting layer. Successor layers advance through every
  // condition the target state satisfies.
  Buchi Out(A.numSymbols(), 1);
  std::unordered_map<uint64_t, State> Index;
  std::vector<std::pair<State, uint32_t>> Info;
  auto Intern = [&](State Q, uint32_t Layer) {
    uint64_t Key = (static_cast<uint64_t>(Q) << 32) | Layer;
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    State Fresh = Out.addState();
    if (Layer == K)
      Out.setAccepting(Fresh);
    Index.emplace(Key, Fresh);
    Info.push_back({Q, Layer});
    return Fresh;
  };
  auto Advance = [&](uint32_t Layer, State Target) {
    uint32_t J = Layer == K ? 0 : Layer;
    while (J < K && (A.acceptMask(Target) & (1ULL << J)))
      ++J;
    return J;
  };
  std::deque<State> Work;
  for (State Q : A.initials().elems()) {
    State S = Intern(Q, Advance(K, Q));
    Out.addInitial(S);
    Work.push_back(S);
  }
  std::vector<bool> Expanded;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    if (S < Expanded.size() && Expanded[S])
      continue;
    if (S >= Expanded.size())
      Expanded.resize(S + 1, false);
    Expanded[S] = true;
    auto [Q, Layer] = Info[S];
    for (const Buchi::Arc &Arc : A.arcsFrom(Q)) {
      State T = Intern(Arc.To, Advance(Layer, Arc.To));
      Out.addTransition(S, Arc.Sym, T);
      if (T >= Expanded.size() || !Expanded[T])
        Work.push_back(T);
    }
  }
  return Out;
}

Buchi termcheck::intersect(const Buchi &A, const Buchi &B) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  uint32_t Conds = A.numConditions() + B.numConditions();
  assert(Conds <= 64 && "too many acceptance conditions");
  Buchi Out(A.numSymbols(), Conds);

  std::unordered_map<uint64_t, State> Index;
  std::vector<std::pair<State, State>> Info;
  auto Intern = [&](State P, State Q) {
    uint64_t Key = (static_cast<uint64_t>(P) << 32) | Q;
    auto It = Index.find(Key);
    if (It != Index.end())
      return It->second;
    State Fresh = Out.addState();
    uint64_t Mask =
        A.acceptMask(P) | (B.acceptMask(Q) << A.numConditions());
    Out.setAcceptMask(Fresh, Mask);
    Index.emplace(Key, Fresh);
    Info.push_back({P, Q});
    return Fresh;
  };

  std::deque<State> Work;
  for (State P : A.initials().elems()) {
    for (State Q : B.initials().elems()) {
      State S = Intern(P, Q);
      Out.addInitial(S);
      Work.push_back(S);
    }
  }
  std::vector<bool> Expanded;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    if (S < Expanded.size() && Expanded[S])
      continue;
    if (S >= Expanded.size())
      Expanded.resize(S + 1, false);
    Expanded[S] = true;
    auto [P, Q] = Info[S];
    for (const Buchi::Arc &ArcA : A.arcsFrom(P)) {
      for (const Buchi::Arc &ArcB : B.arcsFrom(Q)) {
        if (ArcA.Sym != ArcB.Sym)
          continue;
        State T = Intern(ArcA.To, ArcB.To);
        Out.addTransition(S, ArcA.Sym, T);
        if (T >= Expanded.size() || !Expanded[T])
          Work.push_back(T);
      }
    }
  }
  return Out;
}

Buchi termcheck::unionBa(const Buchi &A, const Buchi &B) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  assert(A.numConditions() == 1 && B.numConditions() == 1 &&
         "union expects plain BAs");
  Buchi Out(A.numSymbols(), 1);
  State BaseA = Out.addStates(A.numStates());
  State BaseB = Out.addStates(B.numStates());
  for (State S = 0; S < A.numStates(); ++S) {
    Out.setAcceptMask(BaseA + S, A.acceptMask(S));
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      Out.addTransition(BaseA + S, Arc.Sym, BaseA + Arc.To);
  }
  for (State S = 0; S < B.numStates(); ++S) {
    Out.setAcceptMask(BaseB + S, B.acceptMask(S));
    for (const Buchi::Arc &Arc : B.arcsFrom(S))
      Out.addTransition(BaseB + S, Arc.Sym, BaseB + Arc.To);
  }
  for (State S : A.initials().elems())
    Out.addInitial(BaseA + S);
  for (State S : B.initials().elems())
    Out.addInitial(BaseB + S);
  return Out;
}

std::optional<bool> termcheck::isIncludedIn(const Buchi &A, const Buchi &B) {
  assert(A.numSymbols() == B.numSymbols() && "alphabet mismatch");
  Buchi Complete = completeWithSink(B);
  if (Complete.isDeterministic()) {
    DbaComplementOracle O(Complete);
    return difference(A, O).IsEmpty;
  }
  std::optional<Sdba> Prepared = prepareSdba(Complete);
  if (!Prepared)
    return std::nullopt;
  NcsbOracle O(*Prepared, NcsbVariant::Lazy);
  return difference(A, O).IsEmpty;
}

std::optional<bool> termcheck::isEquivalent(const Buchi &A, const Buchi &B) {
  std::optional<bool> AB = isIncludedIn(A, B);
  if (!AB)
    return std::nullopt;
  if (!*AB)
    return false;
  std::optional<bool> BA = isIncludedIn(B, A);
  if (!BA)
    return std::nullopt;
  return *BA;
}
