//===- automata/Ncsb.h - NCSB complementation of SDBAs --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two SDBA complementation algorithms of Section 5:
///
/// * NCSB-Original (Definition 5.1, Blahoudek et al. [12]): macro-states
///   (N, C, S, B); every time a run in C leaves an accepting state the
///   algorithm eagerly guesses whether it stays in C or moves to the safe
///   set S.
/// * NCSB-Lazy (Section 5.3): the guess is delayed -- while B is nonempty
///   only successors of accepting states inside B may be released to S;
///   when B empties (an accepting macro-state) the accumulated C/S split is
///   guessed wholesale. Proposition 5.2: the lazy complement never has more
///   macro-states than the original.
///
/// Both are exposed as ComplementOracles (on-the-fly, Section 4
/// optimization 1) and implement the subsumption relations of Section 6
/// ([= for Original, [=_B for Lazy) for the antichain-based emp set.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_NCSB_H
#define TERMCHECK_AUTOMATA_NCSB_H

#include "automata/ComplementOracle.h"
#include "automata/Interner.h"
#include "automata/Sdba.h"
#include "automata/StateSet.h"

namespace termcheck {

/// Which NCSB variant to run.
enum class NcsbVariant : uint8_t { Original, Lazy };

/// An NCSB macro-state (N, C, S, B) with B subseteq C and S cap F = empty.
struct NcsbMacroState {
  StateSet N, C, S, B;

  bool operator==(const NcsbMacroState &O) const {
    return N == O.N && C == O.C && S == O.S && B == O.B;
  }

  size_t hash() const {
    size_t H = N.hash();
    H = H * 0x100000001b3ULL ^ C.hash();
    H = H * 0x100000001b3ULL ^ S.hash();
    H = H * 0x100000001b3ULL ^ B.hash();
    return H;
  }

  std::string str() const {
    return "(" + N.str() + "," + C.str() + "," + S.str() + "," + B.str() +
           ")";
  }
};

/// NCSB complementation as a lazily-evaluated complement BA.
class NcsbOracle : public ComplementOracle {
public:
  /// \p In must come from prepareSdba (normalized and complete).
  /// The oracle keeps a reference; \p In must outlive it.
  NcsbOracle(const Sdba &In, NcsbVariant Variant);

  uint32_t numSymbols() const override { return In.A.numSymbols(); }
  std::vector<State> initialStates() override;
  void successors(State S, Symbol Sym, std::vector<State> &Out) override;
  bool isAccepting(State S) override { return Macro[S].B.empty(); }
  size_t numStatesDiscovered() const override { return Macro.size(); }

  /// Section 6: [= (Original) ignores the B component; [=_B (Lazy)
  /// additionally requires B(Sub) supseteq B(Sup). Both mean
  /// component-wise superset of Sub over Sup.
  bool subsumedBy(State Sub, State Sup) const override;

  /// [=_B is early: B(Sub) supseteq B(Sup) is preserved stepwise by the
  /// successor rules (Theorem 6.4), so B(Sub) = emptyset (acceptance)
  /// forces B(Sup) = emptyset at the same step. [= (Original) drops the B
  /// constraint and is only early+1, which the on-stack cutoff must not
  /// use.
  bool subsumptionIsEarly() const override {
    return Variant == NcsbVariant::Lazy;
  }

  /// The interned macro-state behind a dense id (tests, debugging). The
  /// reference is stable across later discoveries (arena-backed interner).
  const NcsbMacroState &macroState(State S) const { return Macro[S]; }

private:
  const Sdba &In;
  NcsbVariant Variant;

  Interner<NcsbMacroState> Macro;

  /// Scratch hoisted out of the successor helpers. The StateSets are the
  /// intermediate sets of Definition 5.1 / the lazy rules, overwritten in
  /// place each expansion so their capacity is reused; ScratchNext is the
  /// candidate macro-state probed against the interner, which copies it
  /// into the arena only on a miss. Steady-state expansions (mostly
  /// re-discovering interned macro-states) therefore allocate nothing.
  std::vector<State> ScratchA, ScratchB;
  std::vector<State> SplitA, SplitB;
  StateSet NPrime, T, D, MustS, Must2, Free, BSucc, CSucc, Tmp1, Tmp2;
  NcsbMacroState ScratchNext;

  State intern(NcsbMacroState M) { return Macro.intern(std::move(M)); }

  /// Out = deterministic-part successors of every state of \p X on \p Sym.
  void delta2Into(const StateSet &X, Symbol Sym, StateSet &Out);
  /// Splits delta(N, Sym) into its Q1 part (into \p N1) and Q2 part
  /// (into \p T).
  void deltaFromN(const StateSet &N, Symbol Sym, StateSet &N1, StateSet &T);
  /// Out = the accepting states of \p X.
  void acceptingInto(const StateSet &X, StateSet &Out);
  /// \returns true when \p X contains an accepting state.
  bool anyAccepting(const StateSet &X) const;

  void succOriginal(const NcsbMacroState &M, Symbol Sym,
                    std::vector<State> &Out);
  void succLazy(const NcsbMacroState &M, Symbol Sym, std::vector<State> &Out);

  /// Emits every two-way split of \p FreeSet as a pair of sorted vectors
  /// (reused scratch; consume before the next emission).
  template <typename Fn>
  void enumerateSplits(const StateSet &FreeSet, Fn Emit);
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_NCSB_H
