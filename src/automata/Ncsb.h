//===- automata/Ncsb.h - NCSB complementation of SDBAs --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two SDBA complementation algorithms of Section 5:
///
/// * NCSB-Original (Definition 5.1, Blahoudek et al. [12]): macro-states
///   (N, C, S, B); every time a run in C leaves an accepting state the
///   algorithm eagerly guesses whether it stays in C or moves to the safe
///   set S.
/// * NCSB-Lazy (Section 5.3): the guess is delayed -- while B is nonempty
///   only successors of accepting states inside B may be released to S;
///   when B empties (an accepting macro-state) the accumulated C/S split is
///   guessed wholesale. Proposition 5.2: the lazy complement never has more
///   macro-states than the original.
///
/// Both are exposed as ComplementOracles (on-the-fly, Section 4
/// optimization 1) and implement the subsumption relations of Section 6
/// ([= for Original, [=_B for Lazy) for the antichain-based emp set.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_NCSB_H
#define TERMCHECK_AUTOMATA_NCSB_H

#include "automata/ComplementOracle.h"
#include "automata/Sdba.h"
#include "automata/StateSet.h"

#include <unordered_map>

namespace termcheck {

/// Which NCSB variant to run.
enum class NcsbVariant : uint8_t { Original, Lazy };

/// An NCSB macro-state (N, C, S, B) with B subseteq C and S cap F = empty.
struct NcsbMacroState {
  StateSet N, C, S, B;

  bool operator==(const NcsbMacroState &O) const {
    return N == O.N && C == O.C && S == O.S && B == O.B;
  }

  size_t hash() const {
    size_t H = N.hash();
    H = H * 0x100000001b3ULL ^ C.hash();
    H = H * 0x100000001b3ULL ^ S.hash();
    H = H * 0x100000001b3ULL ^ B.hash();
    return H;
  }

  std::string str() const {
    return "(" + N.str() + "," + C.str() + "," + S.str() + "," + B.str() +
           ")";
  }
};

/// NCSB complementation as a lazily-evaluated complement BA.
class NcsbOracle : public ComplementOracle {
public:
  /// \p In must come from prepareSdba (normalized and complete).
  /// The oracle keeps a reference; \p In must outlive it.
  NcsbOracle(const Sdba &In, NcsbVariant Variant);

  uint32_t numSymbols() const override { return In.A.numSymbols(); }
  std::vector<State> initialStates() override;
  void successors(State S, Symbol Sym, std::vector<State> &Out) override;
  bool isAccepting(State S) override { return Macro[S].B.empty(); }
  size_t numStatesDiscovered() const override { return Macro.size(); }

  /// Section 6: [= (Original) ignores the B component; [=_B (Lazy)
  /// additionally requires B(Sub) supseteq B(Sup). Both mean
  /// component-wise superset of Sub over Sup.
  bool subsumedBy(State Sub, State Sup) const override;

  /// The interned macro-state behind a dense id (tests, debugging).
  const NcsbMacroState &macroState(State S) const { return Macro[S]; }

private:
  const Sdba &In;
  NcsbVariant Variant;

  std::vector<NcsbMacroState> Macro;
  std::unordered_map<size_t, std::vector<State>> Index;

  State intern(NcsbMacroState M);

  /// Deterministic-part successors of every state of \p X on \p Sym.
  StateSet delta2(const StateSet &X, Symbol Sym) const;
  /// Splits delta(N, Sym) into its Q1 part (into \p N1) and Q2 part
  /// (into \p T).
  void deltaFromN(const StateSet &N, Symbol Sym, StateSet &N1,
                  StateSet &T) const;
  /// Accepting states of \p X.
  StateSet acceptingOf(const StateSet &X) const;

  void succOriginal(const NcsbMacroState &M, Symbol Sym,
                    std::vector<State> &Out);
  void succLazy(const NcsbMacroState &M, Symbol Sym, std::vector<State> &Out);

  /// Emits every (MustTo + subset-of-Free) split into \p Emit.
  template <typename Fn>
  void enumerateSplits(const StateSet &Free, Fn Emit);
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_NCSB_H
