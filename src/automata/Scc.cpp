//===- automata/Scc.cpp - SCC-based emptiness and Algorithm 1 ------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "automata/Scc.h"

#include "automata/DfsFrames.h"
#include "automata/Interner.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace termcheck;

//===----------------------------------------------------------------------===//
// Algorithm 1 (iterative)
//===----------------------------------------------------------------------===//

namespace {

/// DFS frame of the iterative construct() of Algorithm 1: the shared
/// arena slice (DfsFrames.h) plus Algorithm 1's nonemptiness flag.
struct Frame {
  ArcArena::Frame F;
  bool IsNemp = false;
};

/// Entry of the SCCs stack: a potential SCC root with the acceptance
/// conditions its candidate component covers so far.
struct SccEntry {
  State Root;
  uint32_t DfsNum;
  uint64_t Mask;
};

} // namespace

RemoveUselessResult UselessStateRemover::run(GbaSource &Src) {
  RemoveUselessResult Result;
  const uint64_t Full = Src.fullMask();

  // Sources hand out dense ids (GbaSource contract), so every per-state set
  // is a flat vector grown on first touch -- the hash sets this replaces
  // dominated the profile of the difference engine's emptiness checks.
  std::vector<uint32_t> DfsNum; // 0 = unvisited (Cnt starts at 1)
  std::vector<uint8_t> Useful, EmpFallback, OnAct;
  auto Touch = [](auto &V, State S) -> decltype(V[0]) & {
    if (S >= V.size())
      V.resize(S + 1, 0);
    return V[S];
  };
  auto InSet = [](const auto &V, State S) {
    return S < V.size() && V[S] != 0;
  };
  std::vector<State> Act;
  std::vector<SccEntry> SCCs;
  ArcArena Arena;
  std::vector<Frame> Frames;
  uint32_t Cnt = 0;

  auto KnownUseless = [&](State Q) {
    if (IsKnownUseless)
      return IsKnownUseless(Q);
    return InSet(EmpFallback, Q);
  };
  auto MarkUseless = [&](State Q) {
    if (AddUseless)
      AddUseless(Q);
    else
      Touch(EmpFallback, Q) = 1;
  };

  auto enter = [&](State S) {
    Touch(DfsNum, S) = ++Cnt;
    SCCs.push_back({S, Cnt, Src.acceptMask(S)});
    Act.push_back(S);
    Touch(OnAct, S) = 1;
    Frames.push_back(Frame{Arena.push(Src, S), false});
    ++Result.StatesExplored;
  };

  bool FoundAccepting = false;
  const uint32_t Stride = PollStride == 0 ? 1 : PollStride;
  uint32_t AbortPollCountdown = Stride;
  auto PollAbort = [&]() {
    if (!ShouldAbort)
      return false;
    if (--AbortPollCountdown != 0)
      return false;
    AbortPollCountdown = Stride;
    return ShouldAbort();
  };

  for (State QI : Src.initialStates()) {
    if (InSet(Useful, QI)) {
      Result.LanguageEmpty = false;
      continue;
    }
    if (KnownUseless(QI) || InSet(DfsNum, QI))
      continue;
    enter(QI);

    while (!Frames.empty()) {
      if (PollAbort()) {
        Result.Aborted = true;
        return Result;
      }
      Frame &F = Frames.back();
      if (!Arena.done(F.F)) {
        State T = Arena.next(F.F).To;
        if (InSet(Useful, T)) {
          F.IsNemp = true;
          continue;
        }
        if (KnownUseless(T))
          continue;
        if (!InSet(DfsNum, T)) {
          enter(T);
          continue;
        }
        if (!InSet(OnAct, T))
          continue; // fully explored and classified elsewhere
        // T closes a cycle: merge the SCC candidates younger than T.
        uint32_t TNum = DfsNum[T];
        uint64_t Mask = 0;
        SccEntry Last{};
        do {
          assert(!SCCs.empty() && "SCC stack underflow");
          Last = SCCs.back();
          SCCs.pop_back();
          Mask |= Last.Mask;
        } while (Last.DfsNum > TNum);
        if (Mask == Full)
          F.IsNemp = true;
        SCCs.push_back({Last.Root, Last.DfsNum, Mask});
        if (F.IsNemp && StopAtFirstAccepting) {
          FoundAccepting = true;
          break;
        }
        continue;
      }
      // Leaving F.S: pop its SCC if F.S is the current candidate root.
      bool ChildNemp = F.IsNemp;
      const State Leaving = F.F.S;
      if (!SCCs.empty() && SCCs.back().Root == Leaving) {
        // A singleton state with a self-loop covering all conditions also
        // forms an accepting SCC; that case was handled by the merge above
        // (the self-loop closes a cycle on F.S itself).
        SCCs.pop_back();
        State U;
        do {
          assert(!Act.empty() && "act stack underflow");
          U = Act.back();
          Act.pop_back();
          OnAct[U] = 0;
          if (F.IsNemp) {
            Touch(Useful, U) = 1;
            Result.Useful.push_back(U);
          } else {
            MarkUseless(U);
          }
        } while (U != Leaving);
      }
      Arena.pop(Frames.back().F);
      Frames.pop_back();
      if (!Frames.empty())
        Frames.back().IsNemp |= ChildNemp;
    }

    if (FoundAccepting) {
      Result.LanguageEmpty = false;
      return Result;
    }
    if (InSet(Useful, QI))
      Result.LanguageEmpty = false;
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Explicit-automaton helpers
//===----------------------------------------------------------------------===//

bool termcheck::isEmpty(const Buchi &A) {
  ExplicitGbaSource Src(A);
  UselessStateRemover R;
  R.StopAtFirstAccepting = true;
  return R.run(Src).LanguageEmpty;
}

std::string LassoWord::str() const {
  std::string S = "u=[";
  for (size_t I = 0; I < Stem.size(); ++I)
    S += (I ? " " : "") + std::to_string(Stem[I]);
  S += "] v=[";
  for (size_t I = 0; I < Loop.size(); ++I)
    S += (I ? " " : "") + std::to_string(Loop[I]);
  return S + "]";
}

SccDecomposition termcheck::sccDecompose(const Buchi &A) {
  const uint32_t N = A.numStates();
  SccDecomposition D;
  D.CompOf.assign(N, -1);
  std::vector<uint32_t> Index(N, UINT32_MAX), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<State> Stack;
  uint32_t Next = 0;

  std::vector<ExplicitArcFrame> Frames;

  for (State Root : A.initials().elems()) {
    if (Index[Root] != UINT32_MAX)
      continue;
    Frames.push_back({A, Root});
    Index[Root] = Low[Root] = Next++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    while (!Frames.empty()) {
      ExplicitArcFrame &F = Frames.back();
      if (!F.done()) {
        State T = F.next().To;
        if (Index[T] == UINT32_MAX) {
          Index[T] = Low[T] = Next++;
          Stack.push_back(T);
          OnStack[T] = true;
          Frames.push_back({A, T});
        } else if (OnStack[T]) {
          if (Index[T] < Low[F.S])
            Low[F.S] = Index[T];
        }
        continue;
      }
      State S = F.S;
      Frames.pop_back();
      if (!Frames.empty() && Low[S] < Low[Frames.back().S])
        Low[Frames.back().S] = Low[S];
      if (Low[S] == Index[S]) {
        uint32_t Comp = D.NumComps++;
        State U;
        do {
          U = Stack.back();
          Stack.pop_back();
          OnStack[U] = false;
          D.CompOf[U] = static_cast<int32_t>(Comp);
        } while (U != S);
      }
    }
  }
  return D;
}

namespace {

/// BFS over the whole automaton from the initial states; fills predecessor
/// arcs so paths can be reconstructed.
struct BfsTree {
  std::vector<int64_t> PredState;  // -1 for roots/unreached
  std::vector<Symbol> PredSym;
  std::vector<bool> Reached;
  std::vector<State> Order;
};

BfsTree bfsFromInitials(const Buchi &A) {
  BfsTree T;
  T.PredState.assign(A.numStates(), -1);
  T.PredSym.assign(A.numStates(), 0);
  T.Reached.assign(A.numStates(), false);
  std::deque<State> Work;
  for (State S : A.initials().elems()) {
    T.Reached[S] = true;
    Work.push_back(S);
  }
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    T.Order.push_back(S);
    for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
      if (T.Reached[Arc.To])
        continue;
      T.Reached[Arc.To] = true;
      T.PredState[Arc.To] = S;
      T.PredSym[Arc.To] = Arc.Sym;
      Work.push_back(Arc.To);
    }
  }
  return T;
}

/// BFS restricted to one SCC; \returns the symbol path from \p From to the
/// first state satisfying \p Goal, or std::nullopt.
std::optional<std::pair<std::vector<Symbol>, State>>
bfsWithinScc(const Buchi &A, const SccDecomposition &D, int32_t Comp,
             State From, const std::function<bool(State)> &Goal) {
  // States are dense, so predecessor/visited tracking is two flat vectors
  // rather than hash maps keyed by state.
  std::vector<std::pair<State, Symbol>> Pred(A.numStates());
  std::vector<bool> Seen(A.numStates(), false);
  std::deque<State> Work{From};
  Seen[From] = true;
  auto Reconstruct = [&](State Target) {
    std::vector<Symbol> Path;
    State Cur = Target;
    while (Cur != From) {
      auto [P, Sym] = Pred[Cur];
      Path.push_back(Sym);
      Cur = P;
    }
    std::reverse(Path.begin(), Path.end());
    return Path;
  };
  if (Goal(From))
    return std::make_pair(std::vector<Symbol>{}, From);
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    for (const Buchi::Arc &Arc : A.arcsFrom(S)) {
      if (D.CompOf[Arc.To] != Comp || Seen[Arc.To])
        continue;
      Seen[Arc.To] = true;
      Pred[Arc.To] = {S, Arc.Sym};
      if (Goal(Arc.To))
        return std::make_pair(Reconstruct(Arc.To), Arc.To);
      Work.push_back(Arc.To);
    }
  }
  return std::nullopt;
}

} // namespace

std::optional<LassoWord> termcheck::findAcceptingLasso(const Buchi &A) {
  SccDecomposition D = sccDecompose(A);
  BfsTree T = bfsFromInitials(A);

  // Classify components: nontrivial (has an internal arc) and covering all
  // acceptance conditions.
  std::vector<uint64_t> CompMask(D.NumComps, 0);
  std::vector<bool> CompNontrivial(D.NumComps, false);
  for (State S = 0; S < A.numStates(); ++S) {
    if (D.CompOf[S] < 0)
      continue;
    uint32_t C = static_cast<uint32_t>(D.CompOf[S]);
    CompMask[C] |= A.acceptMask(S);
    for (const Buchi::Arc &Arc : A.arcsFrom(S))
      if (D.CompOf[Arc.To] == D.CompOf[S])
        CompNontrivial[C] = true;
  }
  const uint64_t Full = A.fullMask();

  // The BFS order yields the accepting component with the shortest stem.
  State Target = 0;
  bool FoundTarget = false;
  for (State S : T.Order) {
    int32_t C = D.CompOf[S];
    if (C < 0)
      continue;
    if (CompNontrivial[C] && CompMask[C] == Full) {
      Target = S;
      FoundTarget = true;
      break;
    }
  }
  if (!FoundTarget)
    return std::nullopt;

  LassoWord W;
  // Reconstruct the stem.
  {
    std::vector<Symbol> Rev;
    State Cur = Target;
    while (T.PredState[Cur] >= 0) {
      Rev.push_back(T.PredSym[Cur]);
      Cur = static_cast<State>(T.PredState[Cur]);
    }
    W.Stem.assign(Rev.rbegin(), Rev.rend());
  }

  // Build the loop: from Target, greedily visit a state of each missing
  // acceptance condition inside the SCC, then close back to Target.
  int32_t Comp = D.CompOf[Target];
  uint64_t Covered = A.acceptMask(Target);
  State Cur = Target;
  for (uint32_t Cond = 0; Cond < A.numConditions(); ++Cond) {
    uint64_t Bit = 1ULL << Cond;
    if (Covered & Bit)
      continue;
    auto Hop = bfsWithinScc(A, D, Comp, Cur,
                            [&](State S) { return (A.acceptMask(S) & Bit) != 0; });
    assert(Hop && "condition state must exist inside the accepting SCC");
    for (Symbol Sym : Hop->first)
      W.Loop.push_back(Sym);
    Cur = Hop->second;
    Covered |= A.acceptMask(Cur);
  }
  if (Cur == Target && W.Loop.empty()) {
    // Force at least one step before closing the cycle.
    for (const Buchi::Arc &Arc : A.arcsFrom(Cur)) {
      if (D.CompOf[Arc.To] == Comp) {
        W.Loop.push_back(Arc.Sym);
        Cur = Arc.To;
        break;
      }
    }
  }
  if (Cur != Target) {
    auto Back = bfsWithinScc(A, D, Comp, Cur,
                             [&](State S) { return S == Target; });
    assert(Back && "SCC must be strongly connected");
    for (Symbol Sym : Back->first)
      W.Loop.push_back(Sym);
  }
  assert(!W.Loop.empty() && "accepting lasso needs a nonempty loop");
  return W;
}

bool termcheck::acceptsLasso(const Buchi &A, const LassoWord &W) {
  assert(!W.Loop.empty() && "ultimately periodic word needs a loop");
  const uint32_t StemLen = static_cast<uint32_t>(W.Stem.size());
  const uint32_t Total = StemLen + static_cast<uint32_t>(W.Loop.size());
  auto SymbolAt = [&](uint32_t Pos) {
    return Pos < StemLen ? W.Stem[Pos] : W.Loop[Pos - StemLen];
  };
  auto NextPos = [&](uint32_t Pos) {
    return Pos + 1 < Total ? Pos + 1 : StemLen;
  };

  // Product of A with the one-word lasso automaton, over a 1-symbol
  // alphabet (the word fixes all symbols).
  A.ensureIndex(); // every expansion reads exactly one (state, symbol) row
  Buchi P(1, A.numConditions());
  PairInterner Index;
  auto Intern = [&](State Q, uint32_t Pos) {
    auto [Fresh, Inserted] = Index.intern(Q, Pos);
    if (Inserted) {
      State Added = P.addState();
      assert(Added == Fresh && "pair ids must track product states");
      (void)Added;
      P.setAcceptMask(Fresh, A.acceptMask(Q));
    }
    return Fresh;
  };

  std::deque<State> Work;
  for (State Q : A.initials().elems()) {
    State S = Intern(Q, 0);
    P.addInitial(S);
    Work.push_back(S);
  }
  std::vector<bool> Expanded;
  while (!Work.empty()) {
    State S = Work.front();
    Work.pop_front();
    if (S < Expanded.size() && Expanded[S])
      continue;
    if (S >= Expanded.size())
      Expanded.resize(S + 1, false);
    Expanded[S] = true;
    auto [Q, Pos] = Index.get(S);
    Symbol Want = SymbolAt(Pos);
    A.forEachSuccessor(Q, Want, [&](State To) {
      State T = Intern(To, NextPos(Pos));
      P.addTransition(S, 0, T);
      Work.push_back(T);
    });
  }
  return !isEmpty(P);
}
