//===- automata/FiniteTraceComplement.h - Prefix complement ---*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Complementation of finite-trace BAs (stage 1, Section 3.1.2). A
/// finite-trace module accepts Pref . Sigma^omega where Pref is the
/// finite-word language of the automaton's prefix part leading to a single
/// universal accepting state. The complement is the safety language "no
/// prefix of the word is in Pref": a subset construction over the prefix
/// part whose runs die the moment the accepting state becomes reachable.
/// Every surviving subset is accepting. The paper calls this the O(1)-space
/// complement; here it is a deterministic on-the-fly safety automaton.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_FINITETRACECOMPLEMENT_H
#define TERMCHECK_AUTOMATA_FINITETRACECOMPLEMENT_H

#include "automata/ComplementOracle.h"
#include "automata/Interner.h"
#include "automata/StateSet.h"

namespace termcheck {

/// Lazy complement of a finite-trace BA.
class FiniteTraceComplementOracle : public ComplementOracle {
public:
  /// \p A is the finite-trace BA; \p Universal is its single accepting
  /// state (which must carry self-loops on every symbol). The oracle keeps
  /// a reference; \p A must outlive it.
  FiniteTraceComplementOracle(const Buchi &A, State Universal);

  uint32_t numSymbols() const override { return A.numSymbols(); }
  std::vector<State> initialStates() override;
  void successors(State S, Symbol Sym, std::vector<State> &Out) override;
  bool isAccepting(State) override { return true; } // safety automaton
  size_t numStatesDiscovered() const override { return Subsets.size(); }

  /// Larger subsets reach the universal state more easily, so their
  /// complement language is smaller: Sub supseteq Sup implies
  /// L(Sub) subseteq L(Sup).
  bool subsumedBy(State Sub, State Sup) const override {
    return Subsets[Sub].supersetOf(Subsets[Sup]);
  }

  const StateSet &subset(State S) const { return Subsets[S]; }

private:
  const Buchi &A;
  State Universal;
  Interner<StateSet> Subsets;
  std::vector<State> Scratch;

  State intern(StateSet S) { return Subsets.intern(std::move(S)); }
};

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_FINITETRACECOMPLEMENT_H
