//===- automata/Sdba.h - Semideterministic BA toolkit ---------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semideterministic Büchi automata (Section 2). An SDBA's state space
/// splits into a nondeterministic part Q1 and a deterministic part Q2 (the
/// states reachable from accepting states). This header provides:
///
/// * classification (is a BA deterministic / semideterministic, and what is
///   its Q1/Q2 split),
/// * the normalization of Section 2 (every entry point of Q2 and every
///   initial state inside Q2 must be accepting), and
/// * SDBA-preserving completion: Q1 and Q2 get separate rejecting sinks so
///   that completion neither merges the parts nor creates non-accepting
///   entries into Q2.
///
/// The resulting `Sdba` value is the input format of the NCSB
/// complementation algorithms (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_AUTOMATA_SDBA_H
#define TERMCHECK_AUTOMATA_SDBA_H

#include "automata/Buchi.h"

#include <optional>

namespace termcheck {

/// Result of semideterminism classification.
struct SdbaSplit {
  bool IsSemideterministic = false;
  /// Per-state flag: true when the state belongs to Q2 (reachable from an
  /// accepting state). Meaningful only when IsSemideterministic.
  std::vector<bool> InQ2;
};

/// Computes the Q1/Q2 split of a BA (one acceptance condition) and checks
/// that the Q2 part is deterministic.
SdbaSplit classifySdba(const Buchi &A);

/// A normalized, complete SDBA ready for NCSB complementation.
struct Sdba {
  Buchi A;                 ///< complete BA, one acceptance condition
  std::vector<bool> InQ2;  ///< Q1/Q2 split of A

  bool inQ2(State S) const { return InQ2[S]; }
  bool isAccepting(State S) const { return A.acceptMask(S) != 0; }
};

/// Prepares \p A for NCSB: verifies semideterminism, applies the Section 2
/// normalization (accepting Q2 entry points / initial states), and
/// completes both parts with their own sinks. \returns std::nullopt when
/// \p A is not semideterministic.
std::optional<Sdba> prepareSdba(const Buchi &A);

} // namespace termcheck

#endif // TERMCHECK_AUTOMATA_SDBA_H
