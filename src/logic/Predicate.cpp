//===- logic/Predicate.cpp - Predicates over vars + oldrnk ---------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "logic/Predicate.h"

using namespace termcheck;

Predicate Predicate::conjoin(const Predicate &A, const Predicate &B) {
  Cube C = A.C;
  C.conjoin(B.C);
  return Predicate(std::move(C), A.OldrnkInf || B.OldrnkInf);
}

Cube Predicate::restrictToInf(VarId Oldrnk) const {
  if (C.isContradictory())
    return Cube::contradiction();
  Cube Out;
  for (const Constraint &Atom : C.atoms()) {
    int64_t Co = Atom.expr().coeff(Oldrnk);
    if (Co == 0) {
      Out.add(Atom);
      continue;
    }
    // oldrnk = INF: an equality or an upper bound on oldrnk is false, a
    // lower bound ("e <= oldrnk", negative coefficient) is trivially true.
    if (Atom.rel() == RelKind::EQ || Co > 0)
      return Cube::contradiction();
  }
  return Out;
}

bool Predicate::isUnsatisfiable(VarId Oldrnk) const {
  bool InfBranchSat = fm::isSatisfiable(restrictToInf(Oldrnk));
  if (OldrnkInf)
    return !InfBranchSat;
  // Without the INF conjunct the predicate also has finite-oldrnk models.
  return !InfBranchSat && !fm::isSatisfiable(C);
}

bool Predicate::entails(const Predicate &Q, VarId Oldrnk) const {
  // Branch 1: models with oldrnk = INF. Q's INF conjunct holds for free.
  if (!fm::entails(restrictToInf(Oldrnk), Q.restrictToInf(Oldrnk)))
    return false;
  if (OldrnkInf)
    return true;
  // Branch 2: models with a finite oldrnk (treated as an ordinary integer).
  if (Q.OldrnkInf)
    return !fm::isSatisfiable(C);
  return fm::entails(C, Q.C);
}

std::string Predicate::str(const VarTable &Vars) const {
  if (!OldrnkInf)
    return C.str(Vars);
  if (C.isTrue())
    return "oldrnk = INF";
  return "oldrnk = INF /\\ " + C.str(Vars);
}
