//===- logic/FourierMotzkin.h - Linear satisfiability & entailment -*-C++-*-=//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifier elimination, satisfiability and entailment for cubes of linear
/// integer constraints via Fourier-Motzkin elimination with integer
/// tightening. This engine replaces the SMT solver used by the original
/// Ultimate Automizer implementation; in this framework instance every
/// queried formula is a cube over linear integer arithmetic.
///
/// Soundness contract: UNSAT answers are sound over the integers (rational
/// relaxation plus gcd tightening only removes rational-but-not-integer
/// points). SAT answers may overapproximate integer satisfiability; callers
/// rely only on the UNSAT direction (Hoare validity, infeasibility).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_FOURIERMOTZKIN_H
#define TERMCHECK_LOGIC_FOURIERMOTZKIN_H

#include "logic/Cube.h"

namespace termcheck {

/// Fourier-Motzkin based decision procedures for cubes.
namespace fm {

/// Eliminates variable \p V from \p C, preferring exact substitution through
/// an equality atom and falling back to pairwise combination of opposite-sign
/// inequalities. The result is an integer overapproximation of
/// `exists V. C` that is exact over the rationals.
Cube eliminate(const Cube &C, VarId V);

/// Eliminates every variable in \p Vars in sequence.
Cube eliminateAll(Cube C, const std::vector<VarId> &Vars);

/// \returns false only when \p C has no integer solution (sound UNSAT);
/// a true answer means "no contradiction found".
bool isSatisfiable(const Cube &C);

/// \returns true when \p P entails the single atom \p C over the integers.
bool entails(const Cube &P, const Constraint &C);

/// \returns true when \p P entails every atom of \p Q.
bool entails(const Cube &P, const Cube &Q);

/// \returns the set of variables occurring in \p C, ascending.
std::vector<VarId> variablesOf(const Cube &C);

} // namespace fm
} // namespace termcheck

#endif // TERMCHECK_LOGIC_FOURIERMOTZKIN_H
