//===- logic/FourierMotzkin.h - Linear satisfiability & entailment -*-C++-*-=//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifier elimination, satisfiability and entailment for cubes of linear
/// integer constraints via Fourier-Motzkin elimination with integer
/// tightening. This engine replaces the SMT solver used by the original
/// Ultimate Automizer implementation; in this framework instance every
/// queried formula is a cube over linear integer arithmetic.
///
/// Soundness contract: UNSAT answers are sound over the integers (rational
/// relaxation plus gcd tightening only removes rational-but-not-integer
/// points). SAT answers may overapproximate integer satisfiability; callers
/// rely only on the UNSAT direction (Hoare validity, infeasibility).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_FOURIERMOTZKIN_H
#define TERMCHECK_LOGIC_FOURIERMOTZKIN_H

#include "logic/Cube.h"

#include <map>
#include <optional>

namespace termcheck {

/// Fourier-Motzkin based decision procedures for cubes.
namespace fm {

/// Eliminates variable \p V from \p C, preferring exact substitution through
/// an equality atom and falling back to pairwise combination of opposite-sign
/// inequalities. The result is an integer overapproximation of
/// `exists V. C` that is exact over the rationals.
Cube eliminate(const Cube &C, VarId V);

/// Eliminates every variable in \p Vars in sequence.
Cube eliminateAll(Cube C, const std::vector<VarId> &Vars);

/// \returns false only when \p C has no integer solution (sound UNSAT);
/// a true answer means "no contradiction found".
bool isSatisfiable(const Cube &C);

/// \returns true when \p P entails the single atom \p C over the integers.
bool entails(const Cube &P, const Constraint &C);

/// \returns true when \p P entails every atom of \p Q.
bool entails(const Cube &P, const Cube &Q);

/// \returns the set of variables occurring in \p C, ascending.
std::vector<VarId> variablesOf(const Cube &C);

/// Attempts to construct a concrete integer model of \p C: eliminate the
/// variables one by one, then back-substitute in reverse, picking for each
/// variable an integer from its residual interval (0 when unconstrained,
/// the nearest bound otherwise). The returned assignment is verified
/// against \p C before being handed out, so a model is always genuine;
/// nullopt means no model was found (the cube may be integer-unsat, or the
/// chosen elimination order may have landed in an integer gap of the
/// rational relaxation). Used by the nontermination prover to extract
/// loop fixpoints and recurrent-set seed points.
std::optional<std::map<VarId, int64_t>> sampleIntegerPoint(const Cube &C);

} // namespace fm
} // namespace termcheck

#endif // TERMCHECK_LOGIC_FOURIERMOTZKIN_H
