//===- logic/Var.h - Variable identifiers and name table ------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned program-variable identifiers. The logic layer manipulates plain
/// integer ids; the program layer owns a VarTable mapping ids to source
/// names. The auxiliary ranking variable `oldrnk` (Definition 3.1 of the
/// paper) is just another VarId allocated by the termination layer.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_VAR_H
#define TERMCHECK_LOGIC_VAR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace termcheck {

/// Index of a variable in a VarTable.
using VarId = uint32_t;

/// Sentinel for "no variable".
inline constexpr VarId InvalidVar = static_cast<VarId>(-1);

/// Bidirectional map between variable names and dense ids.
class VarTable {
public:
  /// Interns \p Name, returning its id (existing or fresh).
  VarId intern(const std::string &Name) {
    auto It = Ids.find(Name);
    if (It != Ids.end())
      return It->second;
    VarId Id = static_cast<VarId>(Names.size());
    Names.push_back(Name);
    Ids.emplace(Name, Id);
    return Id;
  }

  /// \returns the id of \p Name, or InvalidVar when unknown.
  VarId lookup(const std::string &Name) const {
    auto It = Ids.find(Name);
    return It == Ids.end() ? InvalidVar : It->second;
  }

  /// \returns the name of \p Id.
  const std::string &name(VarId Id) const {
    assert(Id < Names.size() && "unknown variable id");
    return Names[Id];
  }

  /// Number of interned variables.
  size_t size() const { return Names.size(); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, VarId> Ids;
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_VAR_H
