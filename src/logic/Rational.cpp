//===- logic/Rational.cpp - Exact rational arithmetic --------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "logic/Rational.h"

#include <algorithm>

using namespace termcheck;

static std::string int128ToString(__int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  // Peel digits off an unsigned copy to avoid overflow on INT128_MIN.
  unsigned __int128 U =
      Neg ? -static_cast<unsigned __int128>(V) : static_cast<unsigned __int128>(V);
  std::string S;
  while (U != 0) {
    S.push_back(static_cast<char>('0' + static_cast<int>(U % 10)));
    U /= 10;
  }
  if (Neg)
    S.push_back('-');
  std::reverse(S.begin(), S.end());
  return S;
}

std::string Rational::str() const {
  if (Den == 1)
    return int128ToString(Num);
  return int128ToString(Num) + "/" + int128ToString(Den);
}
