//===- logic/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over 128-bit integers, used by the simplex LP solver that
/// backs Farkas-based ranking-function synthesis. Values stay tiny in
/// practice (lasso relations have single-digit coefficients); the 128-bit
/// headroom plus gcd normalization after every operation keeps the
/// representation canonical, and overflow is trapped by assertions.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_RATIONAL_H
#define TERMCHECK_LOGIC_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace termcheck {

/// An exact rational number with canonical representation (gcd-reduced,
/// positive denominator).
class Rational {
public:
  using Int = __int128;

  Rational() : Num(0), Den(1) {}
  Rational(int64_t N) : Num(N), Den(1) {}
  Rational(Int N, Int D) : Num(N), Den(D) { normalize(); }

  Int num() const { return Num; }
  Int den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }
  bool isInteger() const { return Den == 1; }

  Rational operator+(const Rational &O) const {
    return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
  }
  Rational operator-(const Rational &O) const {
    return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
  }
  Rational operator*(const Rational &O) const {
    return Rational(Num * O.Num, Den * O.Den);
  }
  Rational operator/(const Rational &O) const {
    assert(!O.isZero() && "division by zero");
    return Rational(Num * O.Den, Den * O.Num);
  }
  Rational operator-() const {
    Rational R;
    R.Num = -Num;
    R.Den = Den;
    return R;
  }

  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }
  Rational &operator/=(const Rational &O) { return *this = *this / O; }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    return Num * O.Den < O.Num * Den;
  }
  bool operator<=(const Rational &O) const {
    return Num * O.Den <= O.Num * Den;
  }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  /// \returns the value as int64, asserting it is an integral value in range.
  int64_t toInt64() const {
    assert(Den == 1 && "not an integer");
    assert(Num <= INT64_MAX && Num >= INT64_MIN && "int64 overflow");
    return static_cast<int64_t>(Num);
  }

  /// Decimal rendering, e.g. "-3/2" or "7".
  std::string str() const;

private:
  static Int gcd(Int A, Int B) {
    if (A < 0)
      A = -A;
    if (B < 0)
      B = -B;
    while (B != 0) {
      Int T = A % B;
      A = B;
      B = T;
    }
    return A;
  }

  void normalize() {
    assert(Den != 0 && "zero denominator");
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    Int G = gcd(Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
    if (Num == 0)
      Den = 1;
  }

  Int Num;
  Int Den;
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_RATIONAL_H
