//===- logic/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over 128-bit integers, used by the simplex LP solver that
/// backs Farkas-based ranking-function synthesis. Values stay tiny in
/// practice (lasso relations have single-digit coefficients) and gcd
/// normalization after every operation keeps the representation canonical,
/// but adversarial inputs can push intermediate products past 128 bits.
/// Every multiply/add/subtract is therefore overflow-checked with the
/// compiler builtins and raises EngineError(ArithmeticOverflow) instead of
/// wrapping -- in every build mode, including Release with NDEBUG, where the
/// previous assert-based trapping silently vanished. Callers (simplex,
/// ranking synthesis) treat the throw as "this stage failed", never as a
/// wrong value.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_RATIONAL_H
#define TERMCHECK_LOGIC_RATIONAL_H

#include "support/Error.h"
#include "support/FaultInjector.h"

#include <cstdint>
#include <string>

namespace termcheck {

/// An exact rational number with canonical representation (gcd-reduced,
/// positive denominator).
class Rational {
public:
  using Int = __int128;

  Rational() : Num(0), Den(1) {}
  Rational(int64_t N) : Num(N), Den(1) {}
  Rational(Int N, Int D) : Num(N), Den(D) { normalize(); }

  Int num() const { return Num; }
  Int den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }
  bool isInteger() const { return Den == 1; }

  Rational operator+(const Rational &O) const {
    // Fast paths: zero operands and integer-integer sums need no cross
    // multiplication and no gcd; LP tableaus are mostly small integers.
    if (O.Num == 0)
      return *this;
    if (Num == 0)
      return O;
    if (Den == 1 && O.Den == 1)
      return fromIntParts(checkedAdd(Num, O.Num));
    return Rational(checkedAdd(checkedMul(Num, O.Den), checkedMul(O.Num, Den)),
                    checkedMul(Den, O.Den));
  }
  Rational operator-(const Rational &O) const {
    if (O.Num == 0)
      return *this;
    if (Den == 1 && O.Den == 1)
      return fromIntParts(checkedSub(Num, O.Num));
    return Rational(checkedSub(checkedMul(Num, O.Den), checkedMul(O.Num, Den)),
                    checkedMul(Den, O.Den));
  }
  Rational operator*(const Rational &O) const {
    if (Num == 0 || O.Num == 0)
      return Rational();
    if (Den == 1 && O.Den == 1)
      return fromIntParts(checkedMul(Num, O.Num));
    return Rational(checkedMul(Num, O.Num), checkedMul(Den, O.Den));
  }
  Rational operator/(const Rational &O) const {
    if (O.isZero())
      throw EngineError(ErrorKind::InternalInvariant,
                        "rational division by zero");
    if (Num == 0)
      return Rational();
    return Rational(checkedMul(Num, O.Den), checkedMul(Den, O.Num));
  }
  Rational operator-() const {
    Rational R;
    R.Num = checkedNeg(Num);
    R.Den = Den;
    return R;
  }

  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }
  Rational &operator/=(const Rational &O) { return *this = *this / O; }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return Num < O.Num;
    return checkedMul(Num, O.Den) < checkedMul(O.Num, Den);
  }
  bool operator<=(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return Num <= O.Num;
    return checkedMul(Num, O.Den) <= checkedMul(O.Num, Den);
  }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  /// \returns the value as int64. Raises InternalInvariant when the value
  /// is not integral and ArithmeticOverflow when it does not fit.
  int64_t toInt64() const {
    if (Den != 1)
      throw EngineError(ErrorKind::InternalInvariant,
                        "rational is not an integer");
    if (Num > INT64_MAX || Num < INT64_MIN)
      throw EngineError(ErrorKind::ArithmeticOverflow,
                        "rational exceeds int64 range");
    return static_cast<int64_t>(Num);
  }

  /// Decimal rendering, e.g. "-3/2" or "7".
  std::string str() const;

private:
  /// Builds an already-canonical integer (denominator 1) without the
  /// normalize() gcd pass. The 128-bit minimum has no absolute value, so
  /// normalize() rejects it inside gcd(); reject it here the same way.
  static Rational fromIntParts(Int N) {
    if (N < 0)
      (void)checkedNeg(N);
    Rational R;
    R.Num = N;
    return R;
  }

  [[noreturn]] static void overflow() {
    throw EngineError(ErrorKind::ArithmeticOverflow,
                      "rational arithmetic exceeds 128 bits");
  }

  static Int checkedAdd(Int A, Int B) {
    FaultInjector::hit(FaultSite::RationalOp);
    Int R;
    if (__builtin_add_overflow(A, B, &R))
      overflow();
    return R;
  }

  static Int checkedSub(Int A, Int B) {
    FaultInjector::hit(FaultSite::RationalOp);
    Int R;
    if (__builtin_sub_overflow(A, B, &R))
      overflow();
    return R;
  }

  static Int checkedMul(Int A, Int B) {
    FaultInjector::hit(FaultSite::RationalOp);
    Int R;
    if (__builtin_mul_overflow(A, B, &R))
      overflow();
    return R;
  }

  static Int checkedNeg(Int A) {
    Int R;
    if (__builtin_sub_overflow(static_cast<Int>(0), A, &R))
      overflow();
    return R;
  }

  static Int gcd(Int A, Int B) {
    // INT128_MIN has no positive counterpart; its |.| overflows.
    if (A < 0)
      A = checkedNeg(A);
    if (B < 0)
      B = checkedNeg(B);
    while (B != 0) {
      Int T = A % B;
      A = B;
      B = T;
    }
    return A;
  }

  void normalize() {
    if (Den == 0)
      throw EngineError(ErrorKind::InternalInvariant,
                        "rational with zero denominator");
    if (Den < 0) {
      Num = checkedNeg(Num);
      Den = checkedNeg(Den);
    }
    Int G = gcd(Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
    if (Num == 0)
      Den = 1;
  }

  Int Num;
  Int Den;
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_RATIONAL_H
