//===- logic/Cube.cpp - Conjunctions of linear constraints ---------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "logic/Cube.h"

#include <algorithm>

using namespace termcheck;

/// \returns true when both expressions have identical variable terms
/// (the constants may differ).
static bool sameTerms(const LinearExpr &A, const LinearExpr &B) {
  return A.terms() == B.terms();
}

void Cube::add(const Constraint &C) {
  if (Contradictory || C.isTrivallyTrue())
    return;
  if (C.isTrivallyFalse()) {
    Contradictory = true;
    Atoms.clear();
    return;
  }
  // Merge with an existing atom over the same terms, keeping the tightest.
  for (size_t I = 0; I < Atoms.size(); ++I) {
    Constraint &Old = Atoms[I];
    if (!sameTerms(Old.expr(), C.expr()))
      continue;
    int64_t OldC = Old.expr().constantTerm();
    int64_t NewC = C.expr().constantTerm();
    if (Old.rel() == RelKind::EQ && C.rel() == RelKind::EQ) {
      if (OldC != NewC) {
        Contradictory = true;
        Atoms.clear();
      }
      return;
    }
    if (Old.rel() == RelKind::EQ && C.rel() == RelKind::LE) {
      // t + OldC == 0 forces t == -OldC; t + NewC <= 0 iff NewC <= OldC.
      if (NewC > OldC) {
        Contradictory = true;
        Atoms.clear();
      }
      return;
    }
    if (Old.rel() == RelKind::LE && C.rel() == RelKind::EQ) {
      if (OldC > NewC) {
        Contradictory = true;
        Atoms.clear();
        return;
      }
      Old = C;
      return;
    }
    // Both LE: larger constant is tighter (t <= -c).
    if (NewC > OldC)
      Old = C;
    return;
  }
  Atoms.push_back(C);
}

void Cube::conjoin(const Cube &Other) {
  if (Other.Contradictory) {
    Contradictory = true;
    Atoms.clear();
    return;
  }
  for (const Constraint &C : Other.Atoms)
    add(C);
}

bool Cube::mentions(VarId V) const {
  for (const Constraint &C : Atoms)
    if (C.mentions(V))
      return true;
  return false;
}

Cube Cube::map(const std::function<Constraint(const Constraint &)> &Fn) const {
  if (Contradictory)
    return contradiction();
  Cube Out;
  Out.reserve(Atoms.size());
  for (const Constraint &C : Atoms)
    Out.add(Fn(C));
  return Out;
}

void Cube::sortAtoms() {
  std::sort(Atoms.begin(), Atoms.end(),
            [](const Constraint &A, const Constraint &B) {
              if (A.hash() != B.hash())
                return A.hash() < B.hash();
              return static_cast<int>(A.rel()) < static_cast<int>(B.rel());
            });
}

bool Cube::operator==(const Cube &O) const {
  if (Contradictory != O.Contradictory)
    return false;
  if (Atoms.size() != O.Atoms.size())
    return false;
  Cube A = *this, B = O;
  A.sortAtoms();
  B.sortAtoms();
  return A.Atoms == B.Atoms;
}

size_t Cube::hash() const {
  if (Contradictory)
    return 0x5bd1e995U;
  // Order-independent combination so hash() agrees with operator==.
  size_t H = 0x9e3779b97f4a7c15ULL ^ Atoms.size();
  for (const Constraint &C : Atoms)
    H ^= C.hash() * 0xff51afd7ed558ccdULL;
  return H;
}

std::string Cube::str(const VarTable &Vars) const {
  if (Contradictory)
    return "false";
  if (Atoms.empty())
    return "true";
  std::string S;
  for (size_t I = 0; I < Atoms.size(); ++I) {
    if (I != 0)
      S += " /\\ ";
    S += Atoms[I].str(Vars);
  }
  return S;
}
