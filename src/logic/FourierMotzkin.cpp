//===- logic/FourierMotzkin.cpp - Linear satisfiability & entailment -----===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "logic/FourierMotzkin.h"

#include <algorithm>
#include <cassert>

using namespace termcheck;

namespace {

/// Substitutes variable \p V away in \p Target using the equality
/// `Eq.expr() == 0`, which must mention V. The transformation multiplies the
/// target through by the (positive) V-coefficient of the equality, which
/// preserves both EQ and LE atoms.
Constraint substituteViaEquality(const Constraint &Target, const Constraint &Eq,
                                 VarId V) {
  assert(Eq.rel() == RelKind::EQ && Eq.mentions(V) && "bad pivot equality");
  int64_t A = Eq.expr().coeff(V);
  LinearExpr EqExpr = Eq.expr();
  if (A < 0) {
    EqExpr = -EqExpr;
    A = -A;
  }
  int64_t C = Target.expr().coeff(V);
  if (C == 0)
    return Target;
  // a*(target) - c*(equality) cancels V; a > 0 keeps LE orientation.
  LinearExpr Combined = Target.expr().scaledBy(A) - EqExpr.scaledBy(C);
  return Constraint::make(std::move(Combined), Target.rel());
}

} // namespace

Cube fm::eliminate(const Cube &C, VarId V) {
  if (C.isContradictory())
    return Cube::contradiction();
  if (!C.mentions(V))
    return C;

  // Prefer substitution through an equality: exact and no blowup.
  for (const Constraint &Atom : C.atoms()) {
    if (Atom.rel() != RelKind::EQ || !Atom.mentions(V))
      continue;
    Cube Out;
    Out.reserve(C.size());
    for (const Constraint &Other : C.atoms()) {
      if (&Other == &Atom)
        continue;
      Out.add(substituteViaEquality(Other, Atom, V));
      if (Out.isContradictory())
        return Out;
    }
    return Out;
  }

  // Classical FM combination of lower and upper bounds on V.
  std::vector<const Constraint *> Pos, Neg;
  Cube Out;
  Out.reserve(C.size());
  for (const Constraint &Atom : C.atoms()) {
    int64_t Coeff = Atom.expr().coeff(V);
    if (Coeff > 0)
      Pos.push_back(&Atom); // a*V + e <= 0: upper bound
    else if (Coeff < 0)
      Neg.push_back(&Atom); // -a*V + e <= 0: lower bound
    else
      Out.add(Atom);
  }
  for (const Constraint *U : Pos) {
    for (const Constraint *L : Neg) {
      int64_t A = U->expr().coeff(V);
      int64_t B = -L->expr().coeff(V);
      assert(A > 0 && B > 0 && "sign classification broken");
      LinearExpr Combined = U->expr().scaledBy(B) + L->expr().scaledBy(A);
      Out.add(Constraint::make(std::move(Combined), RelKind::LE));
      if (Out.isContradictory())
        return Out;
    }
  }
  return Out;
}

Cube fm::eliminateAll(Cube C, const std::vector<VarId> &Vars) {
  for (VarId V : Vars) {
    C = eliminate(C, V);
    if (C.isContradictory())
      break;
  }
  return C;
}

std::vector<VarId> fm::variablesOf(const Cube &C) {
  // Collect-then-normalize: this runs once per elimination round, where a
  // node-per-element std::set dominated the whole satisfiability check.
  std::vector<VarId> Vars;
  for (const Constraint &Atom : C.atoms())
    for (const LinearExpr::Term &T : Atom.expr().terms())
      Vars.push_back(T.Var);
  std::sort(Vars.begin(), Vars.end());
  Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
  return Vars;
}

bool fm::isSatisfiable(const Cube &C) {
  if (C.isContradictory())
    return false;
  Cube Work = C;
  // Eliminate cheapest variables first (fewest bound pairs) to delay blowup.
  while (true) {
    if (Work.isContradictory())
      return false;
    std::vector<VarId> Vars = variablesOf(Work);
    if (Vars.empty())
      return true; // all atoms ground and individually true by normalization
    // Tally bound counts per variable in one pass over the atoms (Vars is
    // sorted, so position lookup is a binary search); the old
    // per-variable re-scan was quadratic in practice.
    std::vector<uint32_t> NPos(Vars.size(), 0), NNeg(Vars.size(), 0),
        NEq(Vars.size(), 0);
    for (const Constraint &Atom : Work.atoms()) {
      bool IsEq = Atom.rel() == RelKind::EQ;
      for (const LinearExpr::Term &T : Atom.expr().terms()) {
        size_t I = static_cast<size_t>(
            std::lower_bound(Vars.begin(), Vars.end(), T.Var) - Vars.begin());
        if (IsEq)
          ++NEq[I];
        else if (T.Coeff > 0)
          ++NPos[I];
        else
          ++NNeg[I];
      }
    }
    VarId Best = Vars.front();
    size_t BestCost = static_cast<size_t>(-1);
    for (size_t I = 0; I < Vars.size(); ++I) {
      size_t Cost =
          NEq[I] > 0 ? 0 : static_cast<size_t>(NPos[I]) * NNeg[I];
      if (Cost < BestCost) {
        BestCost = Cost;
        Best = Vars[I];
      }
    }
    Work = eliminate(Work, Best);
  }
}

namespace {

/// floor(A / B) for B != 0 (C++ division truncates toward zero).
__int128 floorDiv(__int128 A, __int128 B) {
  __int128 Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// ceil(A / B) for B != 0.
__int128 ceilDiv(__int128 A, __int128 B) {
  __int128 Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

} // namespace

std::optional<std::map<VarId, int64_t>>
fm::sampleIntegerPoint(const Cube &C) {
  if (C.isContradictory())
    return std::nullopt;
  std::vector<VarId> Vars = variablesOf(C);

  // Forward elimination, keeping every intermediate cube: Cubes[i] mentions
  // only Vars[i..].
  std::vector<Cube> Cubes;
  Cubes.reserve(Vars.size() + 1);
  Cubes.push_back(C);
  for (VarId V : Vars) {
    Cubes.push_back(eliminate(Cubes.back(), V));
    if (Cubes.back().isContradictory())
      return std::nullopt;
  }

  // Reverse back-substitution: pick Vars[i] from its interval in Cubes[i]
  // under the values already chosen for Vars[i+1..].
  constexpr __int128 Unbounded = static_cast<__int128>(1) << 100;
  std::map<VarId, int64_t> Model;
  for (size_t I = Vars.size(); I-- > 0;) {
    VarId V = Vars[I];
    __int128 Lo = -Unbounded, Hi = Unbounded;
    for (const Constraint &Atom : Cubes[I].atoms()) {
      __int128 A = Atom.expr().coeff(V);
      // The atom under the partial model, with V itself left symbolic:
      // A*V + Rest (REL) 0.
      __int128 Rest = Atom.expr().constantTerm();
      for (const LinearExpr::Term &T : Atom.expr().terms()) {
        if (T.Var == V)
          continue;
        auto It = Model.find(T.Var);
        if (It == Model.end())
          return std::nullopt; // unexpected free variable
        Rest += static_cast<__int128>(T.Coeff) * It->second;
      }
      if (A == 0) {
        bool Ok = Atom.rel() == RelKind::LE ? Rest <= 0 : Rest == 0;
        if (!Ok)
          return std::nullopt;
        continue;
      }
      if (Atom.rel() == RelKind::EQ) {
        if ((-Rest) % A != 0)
          return std::nullopt; // no integer solution on this branch
        __int128 Val = (-Rest) / A;
        Lo = std::max(Lo, Val);
        Hi = std::min(Hi, Val);
      } else if (A > 0) {
        Hi = std::min(Hi, floorDiv(-Rest, A));
      } else {
        Lo = std::max(Lo, ceilDiv(-Rest, A));
      }
    }
    if (Lo > Hi)
      return std::nullopt; // integer gap of the rational relaxation
    __int128 Val = 0;
    if (Val < Lo)
      Val = Lo;
    if (Val > Hi)
      Val = Hi;
    if (Val < INT64_MIN || Val > INT64_MAX)
      return std::nullopt;
    Model[V] = static_cast<int64_t>(Val);
  }

  // The back-substitution is exact only modulo the elimination's integer
  // overapproximation; verify before handing the model out.
  auto ValueOf = [&Model](VarId V) -> int64_t {
    auto It = Model.find(V);
    return It == Model.end() ? 0 : It->second;
  };
  if (!C.holds(ValueOf))
    return std::nullopt;
  return Model;
}

bool fm::entails(const Cube &P, const Constraint &C) {
  if (P.isContradictory() || C.isTrivallyTrue())
    return true;
  if (C.isTrivallyFalse())
    return !isSatisfiable(P);
  // Syntactic subsumption: Cube::add keeps at most one (tightest) atom per
  // term set, so one scan decides whether P already contains an atom at
  // least as tight as C. Only positive answers short-circuit -- a looser
  // atom over the same terms says nothing about what the rest of P implies.
  for (const Constraint &Atom : P.atoms()) {
    if (Atom.expr().terms() != C.expr().terms())
      continue;
    int64_t PC = Atom.expr().constantTerm();
    int64_t CC = C.expr().constantTerm();
    // t + PC (EQ|LE) 0 forces t <= -PC, so t + CC <= 0 whenever PC >= CC.
    if (C.rel() == RelKind::LE ? PC >= CC
                               : Atom.rel() == RelKind::EQ && PC == CC)
      return true;
    break;
  }
  // P |= C  iff  P /\ not(C) is unsatisfiable; the negation of an equality
  // is a disjunction, so every disjunct must be jointly unsat with P.
  for (const Constraint &NegAtom : C.negation()) {
    Cube Query = P;
    Query.add(NegAtom);
    if (isSatisfiable(Query))
      return false;
  }
  return true;
}

bool fm::entails(const Cube &P, const Cube &Q) {
  if (Q.isContradictory())
    return !isSatisfiable(P);
  for (const Constraint &Atom : Q.atoms())
    if (!entails(P, Atom))
      return false;
  return true;
}
