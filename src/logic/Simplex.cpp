//===- logic/Simplex.cpp - Exact rational LP feasibility -----------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// Implementation notes. The problem is brought into standard form
///   A y = b,  y >= 0,  b >= 0
/// by (1) splitting every free variable x into x+ - x-, (2) flipping rows so
/// the right-hand side is nonnegative, (3) adding slack variables for LE
/// rows, surplus variables for GE rows, and artificial variables wherever a
/// row lacks a natural basic column. Phase 1 minimizes the sum of the
/// artificials with Bland's anti-cycling rule; feasibility holds iff the
/// optimum is zero, and the original assignment is read off the basis.
///
//===----------------------------------------------------------------------===//

#include "logic/Simplex.h"

#include <cassert>

using namespace termcheck;
using namespace termcheck::lp;

int Problem::addVar(bool NonNegative) {
  VarNonNeg.push_back(NonNegative);
  return static_cast<int>(VarNonNeg.size()) - 1;
}

void Problem::addRow(std::vector<std::pair<int, Rational>> Terms, Rel R,
                     Rational Rhs) {
  for ([[maybe_unused]] const auto &[Var, Coeff] : Terms)
    assert(Var >= 0 && Var < numVars() && "unknown LP variable");
  Rows.push_back({std::move(Terms), R, std::move(Rhs)});
}

namespace {

/// Dense phase-1 tableau.
struct Tableau {
  // A has NumRows rows and NumCols columns; column j of row i at A[i][j].
  std::vector<std::vector<Rational>> A;
  std::vector<Rational> B;     // right-hand sides, kept nonnegative
  std::vector<int> Basis;      // basic column of each row
  std::vector<Rational> Cost;  // phase-1 objective coefficients
  int NumCols = 0;

  void pivot(int Row, int Col) {
    Rational P = A[Row][Col];
    assert(!P.isZero() && "pivot on zero entry");
    std::vector<Rational> &PivotRow = A[Row];
    for (int J = 0; J < NumCols; ++J)
      if (!PivotRow[J].isZero()) // tableaus stay sparse; skip the zeros
        PivotRow[J] /= P;
    B[Row] /= P;
    for (size_t I = 0; I < A.size(); ++I) {
      if (static_cast<int>(I) == Row)
        continue;
      Rational F = A[I][Col];
      if (F.isZero())
        continue;
      std::vector<Rational> &Ri = A[I];
      for (int J = 0; J < NumCols; ++J)
        if (!PivotRow[J].isZero())
          Ri[J] -= F * PivotRow[J];
      B[I] -= F * B[Row];
    }
    Basis[Row] = Col;
  }
};

} // namespace

std::optional<std::vector<Rational>> Problem::solve() const {
  // Map original variables to standard-form columns.
  // Nonnegative variable v -> column PosCol[v].
  // Free variable v        -> columns PosCol[v] (x+) and NegCol[v] (x-).
  int NumOrig = numVars();
  std::vector<int> PosCol(NumOrig), NegCol(NumOrig, -1);
  int Cols = 0;
  for (int V = 0; V < NumOrig; ++V) {
    PosCol[V] = Cols++;
    if (!VarNonNeg[V])
      NegCol[V] = Cols++;
  }
  int StructCols = Cols;

  // Expand rows into dense standard form with nonnegative rhs.
  int M = numRows();
  std::vector<std::vector<Rational>> Dense(M,
                                           std::vector<Rational>(StructCols));
  std::vector<Rational> Rhs(M);
  std::vector<Rel> RowRel(M);
  for (int I = 0; I < M; ++I) {
    const Row &R = Rows[I];
    for (const auto &[Var, Coeff] : R.Terms) {
      Dense[I][PosCol[Var]] += Coeff;
      if (NegCol[Var] >= 0)
        Dense[I][NegCol[Var]] -= Coeff;
    }
    Rhs[I] = R.Rhs;
    RowRel[I] = R.R;
    if (Rhs[I].isNegative()) {
      for (Rational &C : Dense[I])
        C = -C;
      Rhs[I] = -Rhs[I];
      if (RowRel[I] == Rel::LE)
        RowRel[I] = Rel::GE;
      else if (RowRel[I] == Rel::GE)
        RowRel[I] = Rel::LE;
    }
  }

  // Count slack/surplus and artificial columns.
  int NumSlack = 0, NumArt = 0;
  for (int I = 0; I < M; ++I) {
    if (RowRel[I] != Rel::EQ)
      ++NumSlack;
    if (RowRel[I] != Rel::LE)
      ++NumArt;
  }

  Tableau T;
  T.NumCols = StructCols + NumSlack + NumArt;
  T.A.assign(M, std::vector<Rational>(T.NumCols));
  T.B = Rhs;
  T.Basis.assign(M, -1);
  T.Cost.assign(T.NumCols, Rational(0));

  int SlackBase = StructCols;
  int ArtBase = StructCols + NumSlack;
  int SlackIdx = 0, ArtIdx = 0;
  for (int I = 0; I < M; ++I) {
    for (int J = 0; J < StructCols; ++J)
      T.A[I][J] = Dense[I][J];
    if (RowRel[I] == Rel::LE) {
      int C = SlackBase + SlackIdx++;
      T.A[I][C] = Rational(1);
      T.Basis[I] = C; // slack starts basic
    } else if (RowRel[I] == Rel::GE) {
      int C = SlackBase + SlackIdx++;
      T.A[I][C] = Rational(-1); // surplus
      int Art = ArtBase + ArtIdx++;
      T.A[I][Art] = Rational(1);
      T.Cost[Art] = Rational(1);
      T.Basis[I] = Art;
    } else {
      int Art = ArtBase + ArtIdx++;
      T.A[I][Art] = Rational(1);
      T.Cost[Art] = Rational(1);
      T.Basis[I] = Art;
    }
  }

  // Reduced costs: z_j - c_j for the phase-1 objective. Start from the
  // basic solution (artificials basic), i.e. reduced[j] = sum over rows
  // with artificial basis of A[i][j], minus cost[j].
  std::vector<Rational> Reduced(T.NumCols);
  Rational Objective(0);
  for (int I = 0; I < M; ++I) {
    if (T.Cost[T.Basis[I]].isZero())
      continue;
    for (int J = 0; J < T.NumCols; ++J)
      Reduced[J] += T.A[I][J];
    Objective += T.B[I];
  }
  for (int J = 0; J < T.NumCols; ++J)
    Reduced[J] -= T.Cost[J];

  // Phase-1 iterations with Bland's rule (enter: lowest index with positive
  // reduced cost; leave: lowest basic index among minimal ratios).
  while (true) {
    int Enter = -1;
    for (int J = 0; J < T.NumCols; ++J) {
      if (Reduced[J].isPositive()) {
        Enter = J;
        break;
      }
    }
    if (Enter < 0)
      break; // optimal
    int Leave = -1;
    Rational BestRatio(0);
    for (int I = 0; I < M; ++I) {
      if (!T.A[I][Enter].isPositive())
        continue;
      Rational Ratio = T.B[I] / T.A[I][Enter];
      if (Leave < 0 || Ratio < BestRatio ||
          (Ratio == BestRatio && T.Basis[I] < T.Basis[Leave])) {
        Leave = I;
        BestRatio = Ratio;
      }
    }
    if (Leave < 0)
      return std::nullopt; // phase-1 objective unbounded: cannot happen,
                           // but fail closed rather than loop
    // Standard incremental update: with exact rationals the textbook
    //   r'_j = r_j - r_e * a'_{leave,j},  z' = z - r_e * b'_leave
    // identities (primed = post-pivot) hold exactly, so one O(cols) sweep
    // replaces the old full O(rows * cols) re-derivation.
    Rational REnter = Reduced[Enter];
    T.pivot(Leave, Enter);
    for (int J = 0; J < T.NumCols; ++J)
      if (!T.A[Leave][J].isZero())
        Reduced[J] -= REnter * T.A[Leave][J];
    Objective -= REnter * T.B[Leave];
  }

  if (Objective.isPositive())
    return std::nullopt; // infeasible

  // Read the solution off the basis.
  std::vector<Rational> ColValue(T.NumCols);
  for (int I = 0; I < M; ++I)
    ColValue[T.Basis[I]] = T.B[I];
  std::vector<Rational> Out(NumOrig);
  for (int V = 0; V < NumOrig; ++V) {
    Out[V] = ColValue[PosCol[V]];
    if (NegCol[V] >= 0)
      Out[V] -= ColValue[NegCol[V]];
  }
  return Out;
}
