//===- logic/LinearExpr.cpp - Integer linear expressions -----------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "logic/LinearExpr.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace termcheck;

int64_t LinearExpr::clampToInt64(__int128 V) {
  assert(V <= INT64_MAX && V >= INT64_MIN && "coefficient overflow");
  return static_cast<int64_t>(V);
}

LinearExpr LinearExpr::constant(int64_t C) {
  LinearExpr E;
  E.Constant = C;
  return E;
}

LinearExpr LinearExpr::variable(VarId V) { return scaled(V, 1); }

LinearExpr LinearExpr::scaled(VarId V, int64_t Coeff) {
  LinearExpr E;
  if (Coeff != 0)
    E.Terms.push_back({V, Coeff});
  return E;
}

int64_t LinearExpr::coeff(VarId V) const {
  for (const Term &T : Terms)
    if (T.Var == V)
      return T.Coeff;
  return 0;
}

void LinearExpr::addTerm(VarId V, __int128 Coeff) {
  if (Coeff == 0)
    return;
  for (Term &T : Terms) {
    if (T.Var != V)
      continue;
    __int128 NewCoeff = static_cast<__int128>(T.Coeff) + Coeff;
    T.Coeff = clampToInt64(NewCoeff);
    return;
  }
  Terms.push_back({V, clampToInt64(Coeff)});
}

void LinearExpr::canonicalize() {
  std::sort(Terms.begin(), Terms.end(),
            [](const Term &A, const Term &B) { return A.Var < B.Var; });
  Terms.erase(std::remove_if(Terms.begin(), Terms.end(),
                             [](const Term &T) { return T.Coeff == 0; }),
              Terms.end());
}

LinearExpr LinearExpr::mergeScaled(const LinearExpr &L, const LinearExpr &R,
                                   int64_t K) {
  // Merges two canonical (sorted, zero-free) term lists into `L + K * R`.
  // Linear with one reservation -- operator+/- sit in the Fourier-Motzkin
  // inner loop, where a scan-per-term merge plus re-sort dominated.
  LinearExpr Out;
  Out.Constant = clampToInt64(static_cast<__int128>(L.Constant) +
                              static_cast<__int128>(R.Constant) * K);
  Out.Terms.reserve(L.Terms.size() + R.Terms.size());
  auto A = L.Terms.begin(), AE = L.Terms.end();
  auto B = R.Terms.begin(), BE = R.Terms.end();
  while (A != AE && B != BE) {
    if (A->Var < B->Var) {
      Out.Terms.push_back(*A++);
    } else if (B->Var < A->Var) {
      Out.Terms.push_back(
          {B->Var, clampToInt64(static_cast<__int128>(B->Coeff) * K)});
      ++B;
    } else {
      int64_t C = clampToInt64(static_cast<__int128>(A->Coeff) +
                               static_cast<__int128>(B->Coeff) * K);
      if (C != 0)
        Out.Terms.push_back({A->Var, C});
      ++A;
      ++B;
    }
  }
  Out.Terms.insert(Out.Terms.end(), A, AE);
  for (; B != BE; ++B)
    Out.Terms.push_back(
        {B->Var, clampToInt64(static_cast<__int128>(B->Coeff) * K)});
  return Out;
}

LinearExpr LinearExpr::operator+(const LinearExpr &O) const {
  return mergeScaled(*this, O, 1);
}

LinearExpr LinearExpr::operator-(const LinearExpr &O) const {
  return mergeScaled(*this, O, -1);
}

LinearExpr LinearExpr::operator-() const { return scaledBy(-1); }

LinearExpr LinearExpr::scaledBy(int64_t K) const {
  LinearExpr R;
  if (K == 0)
    return R;
  R.Constant = clampToInt64(static_cast<__int128>(Constant) * K);
  R.Terms.reserve(Terms.size());
  for (const Term &T : Terms)
    R.Terms.push_back({T.Var, clampToInt64(static_cast<__int128>(T.Coeff) * K)});
  return R;
}

LinearExpr LinearExpr::substitute(VarId V, const LinearExpr &Repl) const {
  int64_t C = coeff(V);
  if (C == 0)
    return *this;
  LinearExpr R = *this;
  // Remove the V term, then add Coeff * Repl.
  R.Terms.erase(std::remove_if(R.Terms.begin(), R.Terms.end(),
                               [V](const Term &T) { return T.Var == V; }),
                R.Terms.end());
  return R + Repl.scaledBy(C);
}

int64_t LinearExpr::coefficientGcd() const {
  int64_t G = 0;
  for (const Term &T : Terms)
    G = std::gcd(G, T.Coeff < 0 ? -T.Coeff : T.Coeff);
  return G;
}

size_t LinearExpr::hash() const {
  size_t H = static_cast<size_t>(Constant) * 0x9e3779b97f4a7c15ULL;
  for (const Term &T : Terms) {
    H ^= (static_cast<size_t>(T.Var) + 0x9e3779b9U) + (H << 6) + (H >> 2);
    H ^= (static_cast<size_t>(T.Coeff) * 0xff51afd7ed558ccdULL) + (H << 6) +
         (H >> 2);
  }
  return H;
}

std::string LinearExpr::str(const VarTable &Vars) const {
  std::string S;
  bool First = true;
  for (const Term &T : Terms) {
    int64_t C = T.Coeff;
    if (First) {
      if (C == -1)
        S += "-";
      else if (C != 1)
        S += std::to_string(C) + "*";
    } else {
      S += C < 0 ? " - " : " + ";
      int64_t A = C < 0 ? -C : C;
      if (A != 1)
        S += std::to_string(A) + "*";
    }
    S += Vars.name(T.Var);
    First = false;
  }
  if (First)
    return std::to_string(Constant);
  if (Constant > 0)
    S += " + " + std::to_string(Constant);
  else if (Constant < 0)
    S += " - " + std::to_string(-Constant);
  return S;
}
