//===- logic/LinearExpr.h - Integer linear expressions --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear expressions `c1*x1 + ... + cn*xn + b` with 64-bit integer
/// coefficients over interned variables. This is the term language of the
/// WHILE front end (right-hand sides of assignments, guard atoms) and of the
/// constraint engine. Terms are kept sorted by variable id so that equality
/// and hashing are structural.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_LINEAREXPR_H
#define TERMCHECK_LOGIC_LINEAREXPR_H

#include "logic/Var.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace termcheck {

/// A linear expression with integer coefficients and a constant term.
class LinearExpr {
public:
  /// One summand: coefficient times variable.
  struct Term {
    VarId Var;
    int64_t Coeff;
    bool operator==(const Term &O) const {
      return Var == O.Var && Coeff == O.Coeff;
    }
  };

  LinearExpr() = default;

  /// \returns the expression consisting of the constant \p C.
  static LinearExpr constant(int64_t C);

  /// \returns the expression `1 * V`.
  static LinearExpr variable(VarId V);

  /// \returns the expression `Coeff * V`.
  static LinearExpr scaled(VarId V, int64_t Coeff);

  int64_t constantTerm() const { return Constant; }
  const std::vector<Term> &terms() const { return Terms; }
  bool isConstant() const { return Terms.empty(); }

  /// \returns the coefficient of \p V (zero when absent).
  int64_t coeff(VarId V) const;

  /// \returns true if \p V occurs with a nonzero coefficient.
  bool mentions(VarId V) const { return coeff(V) != 0; }

  LinearExpr operator+(const LinearExpr &O) const;
  LinearExpr operator-(const LinearExpr &O) const;
  LinearExpr operator-() const;

  /// Multiplies every coefficient and the constant by \p K.
  LinearExpr scaledBy(int64_t K) const;

  /// Replaces every occurrence of \p V by \p Repl.
  LinearExpr substitute(VarId V, const LinearExpr &Repl) const;

  /// Evaluates the expression under an assignment \p ValueOf(V).
  /// \p ValueOf must be defined for every variable of the expression.
  template <typename Fn> int64_t evaluate(Fn ValueOf) const {
    __int128 Acc = Constant;
    for (const Term &T : Terms)
      Acc += static_cast<__int128>(T.Coeff) * ValueOf(T.Var);
    return clampToInt64(Acc);
  }

  /// gcd of the variable coefficients (0 for constant expressions).
  int64_t coefficientGcd() const;

  bool operator==(const LinearExpr &O) const {
    return Constant == O.Constant && Terms == O.Terms;
  }
  bool operator!=(const LinearExpr &O) const { return !(*this == O); }

  /// Structural hash (used by cube dedup).
  size_t hash() const;

  /// Rendering such as "2*i - j + 1" with names from \p Vars.
  std::string str(const VarTable &Vars) const;

  /// Asserts \p V fits int64 and converts (shared with the FM engine).
  static int64_t clampToInt64(__int128 V);

private:
  friend class ConstraintBuilder;
  void addTerm(VarId V, __int128 Coeff);
  void canonicalize();

  /// `L + K * R` by linear merge of the sorted term lists.
  static LinearExpr mergeScaled(const LinearExpr &L, const LinearExpr &R,
                                int64_t K);

  std::vector<Term> Terms; // sorted by Var, no zero coefficients
  int64_t Constant = 0;
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_LINEAREXPR_H
