//===- logic/Predicate.h - Predicates over vars + oldrnk ------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rank-certificate predicates (Definition 3.1). A predicate is a cube over
/// the program variables and the auxiliary variable `oldrnk`, optionally
/// conjoined with the atom `oldrnk = INF`. `oldrnk` ranges over the
/// well-ordered set extended with a top element INF, so atoms mentioning
/// oldrnk are evaluated specially when oldrnk is INF:
///
///   e - oldrnk <= 0   -> true    (anything is <= INF)
///   oldrnk + e <= 0   -> false   (INF exceeds every bound)
///   oldrnk ... == 0   -> false
///
/// Entailment and satisfiability case-split on whether oldrnk is INF, which
/// is exactly what the constructions in Sections 3.1.2-3.1.5 need: stem
/// states imply oldrnk = INF while loop states constrain a finite oldrnk
/// (the paper notes this is why stem and loop states can never merge).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_PREDICATE_H
#define TERMCHECK_LOGIC_PREDICATE_H

#include "logic/Cube.h"
#include "logic/FourierMotzkin.h"

namespace termcheck {

/// A certificate predicate: cube plus optional `oldrnk = INF` conjunct.
class Predicate {
public:
  Predicate() = default;
  explicit Predicate(Cube C, bool OldrnkIsInf = false)
      : C(std::move(C)), OldrnkInf(OldrnkIsInf) {}

  /// \returns the predicate `oldrnk = INF` (initial states, Def. 3.1).
  static Predicate oldrnkInfinity() { return Predicate(Cube(), true); }

  /// \returns the canonical contradictory predicate.
  static Predicate contradiction() {
    return Predicate(Cube::contradiction(), false);
  }

  const Cube &cube() const { return C; }
  bool oldrnkIsInf() const { return OldrnkInf; }

  /// Conjoins two predicates.
  static Predicate conjoin(const Predicate &A, const Predicate &B);

  /// \returns true iff the predicate mentions oldrnk at all -- either the
  /// INF conjunct or an atom over \p Oldrnk. This implements the
  /// `oldrnk in var(I(q))` test of Definition 3.2.
  bool mentionsOldrnk(VarId Oldrnk) const {
    return OldrnkInf || C.mentions(Oldrnk);
  }

  /// Sound unsatisfiability check over the extended domain.
  bool isUnsatisfiable(VarId Oldrnk) const;

  /// \returns true when every model of this predicate (finite and INF
  /// oldrnk alike) satisfies \p Q.
  bool entails(const Predicate &Q, VarId Oldrnk) const;

  /// \returns the cube describing the INF-oldrnk models: atoms mentioning
  /// \p Oldrnk are evaluated under oldrnk = INF.
  Cube restrictToInf(VarId Oldrnk) const;

  /// Structural equality (used to merge lasso-module states, Section 3.1.1).
  bool operator==(const Predicate &O) const {
    return OldrnkInf == O.OldrnkInf && C == O.C;
  }
  bool operator!=(const Predicate &O) const { return !(*this == O); }

  size_t hash() const { return C.hash() * 2 + (OldrnkInf ? 1 : 0); }

  /// Rendering such as "oldrnk = INF /\ i - 1 >= 0".
  std::string str(const VarTable &Vars) const;

private:
  Cube C;
  bool OldrnkInf = false;
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_PREDICATE_H
