//===- logic/Simplex.h - Exact rational LP feasibility --------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exact-arithmetic simplex solver. The termination layer uses it to
/// discharge the Farkas-lemma systems of the Podelski-Rybalchenko linear
/// ranking-function synthesis (the "off-the-shelf approach" of Figure 1):
/// the multipliers must be nonnegative rationals satisfying a set of linear
/// equations, which is precisely LP feasibility. Phase-1 simplex with
/// Bland's rule over exact rationals; no floating point anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_SIMPLEX_H
#define TERMCHECK_LOGIC_SIMPLEX_H

#include "logic/Rational.h"

#include <optional>
#include <utility>
#include <vector>

namespace termcheck {
namespace lp {

/// Row relation of an LP constraint.
enum class Rel : uint8_t { LE, GE, EQ };

/// A feasibility problem `A x rel b` with optional per-variable
/// nonnegativity. Free variables are handled by internal splitting.
class Problem {
public:
  /// Adds a decision variable; \returns its index.
  /// \p NonNegative constrains the variable to `>= 0`.
  int addVar(bool NonNegative);

  /// Adds the row `sum Terms rel Rhs`. Term indices must come from addVar.
  void addRow(std::vector<std::pair<int, Rational>> Terms, Rel R,
              Rational Rhs);

  /// Runs phase-1 simplex. \returns an assignment for every variable when
  /// the system is feasible, std::nullopt otherwise.
  std::optional<std::vector<Rational>> solve() const;

  int numVars() const { return static_cast<int>(VarNonNeg.size()); }
  int numRows() const { return static_cast<int>(Rows.size()); }

private:
  struct Row {
    std::vector<std::pair<int, Rational>> Terms;
    Rel R;
    Rational Rhs;
  };

  std::vector<bool> VarNonNeg;
  std::vector<Row> Rows;
};

} // namespace lp
} // namespace termcheck

#endif // TERMCHECK_LOGIC_SIMPLEX_H
