//===- logic/Constraint.cpp - Normalized linear constraints --------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "logic/Constraint.h"

#include <cassert>
#include <numeric>

using namespace termcheck;

Constraint Constraint::make(LinearExpr E, RelKind Rel) {
  Constraint C;
  C.Expr = std::move(E);
  C.Rel = Rel;
  C.normalize();
  return C;
}

Constraint Constraint::le(const LinearExpr &L, const LinearExpr &R) {
  return make(L - R, RelKind::LE);
}

Constraint Constraint::lt(const LinearExpr &L, const LinearExpr &R) {
  return make(L - R + LinearExpr::constant(1), RelKind::LE);
}

Constraint Constraint::ge(const LinearExpr &L, const LinearExpr &R) {
  return make(R - L, RelKind::LE);
}

Constraint Constraint::gt(const LinearExpr &L, const LinearExpr &R) {
  return make(R - L + LinearExpr::constant(1), RelKind::LE);
}

Constraint Constraint::eq(const LinearExpr &L, const LinearExpr &R) {
  return make(L - R, RelKind::EQ);
}

/// Floor division with mathematically correct rounding for negatives.
static int64_t floorDiv(int64_t A, int64_t B) {
  assert(B > 0 && "divisor must be positive");
  int64_t Q = A / B;
  if (A % B != 0 && A < 0)
    --Q;
  return Q;
}

void Constraint::normalize() {
  if (Expr.isConstant()) {
    int64_t C = Expr.constantTerm();
    bool Holds = Rel == RelKind::LE ? C <= 0 : C == 0;
    Stat = Holds ? Status::TriviallyTrue : Status::TriviallyFalse;
    return;
  }
  Stat = Status::Proper;
  int64_t G = Expr.coefficientGcd();
  if (G <= 1)
    return;
  int64_t C = Expr.constantTerm();
  if (Rel == RelKind::EQ) {
    if (C % G != 0) {
      // g | lhs but g does not divide the constant: no integer solution.
      Stat = Status::TriviallyFalse;
      return;
    }
    // Divide all coefficients and the constant by g.
    LinearExpr Reduced;
    for (const LinearExpr::Term &T : Expr.terms())
      Reduced = Reduced + LinearExpr::scaled(T.Var, T.Coeff / G);
    Expr = Reduced + LinearExpr::constant(C / G);
    return;
  }
  // g*t + c <= 0  <=>  t <= floor(-c / g)  <=>  t + ceil(c/g) <= 0.
  LinearExpr Reduced;
  for (const LinearExpr::Term &T : Expr.terms())
    Reduced = Reduced + LinearExpr::scaled(T.Var, T.Coeff / G);
  Expr = Reduced + LinearExpr::constant(-floorDiv(-C, G));
}

std::vector<Constraint> Constraint::negation() const {
  // not (e <= 0)  <=>  e >= 1        (integers)
  // not (e == 0)  <=>  e >= 1 or e <= -1
  std::vector<Constraint> Out;
  LinearExpr One = LinearExpr::constant(1);
  if (Rel == RelKind::LE) {
    Out.push_back(make(One - Expr, RelKind::LE));
    return Out;
  }
  Out.push_back(make(One - Expr, RelKind::LE));
  Out.push_back(make(Expr + One, RelKind::LE));
  return Out;
}

std::string Constraint::str(const VarTable &Vars) const {
  if (Stat == Status::TriviallyTrue)
    return "true";
  if (Stat == Status::TriviallyFalse)
    return "false";
  return Expr.str(Vars) + (Rel == RelKind::LE ? " <= 0" : " == 0");
}
