//===- logic/Constraint.h - Normalized linear constraints -----*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Atomic linear constraints in the canonical form `expr <= 0` or
/// `expr == 0`. All program variables range over the integers, so strict
/// inequalities are tightened on construction (`a < b` becomes
/// `a - b + 1 <= 0`) and coefficients are gcd-reduced with floor rounding of
/// the constant; this integer tightening is what lets the Fourier-Motzkin
/// engine decide guards like `i > 0` exactly in the paper's running example.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_CONSTRAINT_H
#define TERMCHECK_LOGIC_CONSTRAINT_H

#include "logic/LinearExpr.h"

#include <string>

namespace termcheck {

/// Relation of a canonical constraint.
enum class RelKind : uint8_t {
  LE, ///< expr <= 0
  EQ, ///< expr == 0
};

/// A normalized atomic constraint `Expr Rel 0`.
class Constraint {
public:
  /// Triviality status after normalization.
  enum class Status : uint8_t { Proper, TriviallyTrue, TriviallyFalse };

  Constraint() = default;

  /// Builds `L <= R`.
  static Constraint le(const LinearExpr &L, const LinearExpr &R);
  /// Builds `L < R` (tightened to `L <= R - 1`).
  static Constraint lt(const LinearExpr &L, const LinearExpr &R);
  /// Builds `L >= R`.
  static Constraint ge(const LinearExpr &L, const LinearExpr &R);
  /// Builds `L > R` (tightened to `L >= R + 1`).
  static Constraint gt(const LinearExpr &L, const LinearExpr &R);
  /// Builds `L == R`.
  static Constraint eq(const LinearExpr &L, const LinearExpr &R);

  /// Builds `E Rel 0` directly from a canonical-form expression.
  static Constraint make(LinearExpr E, RelKind Rel);

  const LinearExpr &expr() const { return Expr; }
  RelKind rel() const { return Rel; }
  Status status() const { return Stat; }
  bool isTrivallyTrue() const { return Stat == Status::TriviallyTrue; }
  bool isTrivallyFalse() const { return Stat == Status::TriviallyFalse; }

  /// \returns the negation as a list of constraints whose *disjunction* is
  /// equivalent to the negation (one element for LE, two for EQ).
  std::vector<Constraint> negation() const;

  /// Evaluates the constraint under an integer assignment.
  template <typename Fn> bool holds(Fn ValueOf) const {
    int64_t V = Expr.evaluate(ValueOf);
    return Rel == RelKind::LE ? V <= 0 : V == 0;
  }

  bool mentions(VarId V) const { return Expr.mentions(V); }

  bool operator==(const Constraint &O) const {
    return Rel == O.Rel && Expr == O.Expr;
  }
  bool operator!=(const Constraint &O) const { return !(*this == O); }

  size_t hash() const {
    return Expr.hash() * 3 + static_cast<size_t>(Rel);
  }

  /// Rendering such as "i - j + 1 <= 0".
  std::string str(const VarTable &Vars) const;

private:
  LinearExpr Expr;
  RelKind Rel = RelKind::LE;
  Status Stat = Status::TriviallyTrue;

  void normalize();
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_CONSTRAINT_H
