//===- logic/Cube.h - Conjunctions of linear constraints ------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cube is a conjunction of atomic linear constraints. Cubes are the
/// predicate domain of this framework instance: rank certificates
/// (Definition 3.1), strongest postconditions along lassos, and the Hoare
/// triples queried by the module constructions (Definition 3.2) all live in
/// this domain. Insertion keeps the cube lightly reduced: trivially true
/// atoms are dropped, a trivially false atom collapses the cube, and atoms
/// with an identical left-hand side keep only the tightest bound.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_LOGIC_CUBE_H
#define TERMCHECK_LOGIC_CUBE_H

#include "logic/Constraint.h"

#include <functional>
#include <string>
#include <vector>

namespace termcheck {

/// A conjunction of constraints, possibly the canonical contradiction.
class Cube {
public:
  Cube() = default;

  /// \returns the canonical contradictory cube.
  static Cube contradiction() {
    Cube C;
    C.Contradictory = true;
    return C;
  }

  /// Conjoins one constraint (no-op once contradictory).
  void add(const Constraint &C);

  /// Pre-sizes the atom storage (hot loops add one atom at a time).
  void reserve(size_t N) { Atoms.reserve(N); }

  /// Conjoins all constraints of \p Other.
  void conjoin(const Cube &Other);

  /// \returns true if the cube is the syntactic contradiction. A false
  /// result does NOT imply satisfiability; use FourierMotzkin for that.
  bool isContradictory() const { return Contradictory; }

  /// \returns true if the cube is the empty conjunction (i.e. `true`).
  bool isTrue() const { return !Contradictory && Atoms.empty(); }

  const std::vector<Constraint> &atoms() const { return Atoms; }
  size_t size() const { return Atoms.size(); }

  /// \returns true if any atom mentions \p V.
  bool mentions(VarId V) const;

  /// Applies \p Fn to every atom, rebuilding the cube (used by
  /// substitution-based postcondition computation).
  Cube map(const std::function<Constraint(const Constraint &)> &Fn) const;

  /// Evaluates under an integer assignment.
  template <typename Fn> bool holds(Fn ValueOf) const {
    if (Contradictory)
      return false;
    for (const Constraint &C : Atoms)
      if (!C.holds(ValueOf))
        return false;
    return true;
  }

  /// Structural equality after light reduction. Atoms are order-normalized.
  bool operator==(const Cube &O) const;
  bool operator!=(const Cube &O) const { return !(*this == O); }

  size_t hash() const;

  /// Rendering such as "i - 1 >= 0 /\ j == 1" ("true"/"false" when trivial).
  std::string str(const VarTable &Vars) const;

private:
  std::vector<Constraint> Atoms; // kept sorted by (expr-hash, rel) on demand
  bool Contradictory = false;

  void sortAtoms();
};

} // namespace termcheck

#endif // TERMCHECK_LOGIC_CUBE_H
