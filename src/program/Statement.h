//===- program/Statement.h - Program statements ---------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statements are the alphabet of the program automaton (Section 1 of the
/// paper: "The alphabet of A_P is the set of all statements occurring in
/// P"). Three kinds suffice for the WHILE fragment:
///
///   assume(cube)  -- guard; the associated relation keeps valuations that
///                    satisfy the cube and leaves them unchanged,
///   x := e        -- deterministic linear assignment,
///   havoc x       -- nondeterministic assignment.
///
/// Every statement knows its strongest postcondition on the cube domain,
/// which is the single primitive needed for the Hoare-triple queries of
/// Definitions 3.1 and 3.2.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_PROGRAM_STATEMENT_H
#define TERMCHECK_PROGRAM_STATEMENT_H

#include "logic/Cube.h"
#include "logic/FourierMotzkin.h"

#include <string>

namespace termcheck {

/// Discriminator for Statement.
enum class StmtKind : uint8_t { Assume, Assign, Havoc };

/// An atomic program statement with relational semantics.
class Statement {
public:
  /// Builds `assume(G)`.
  static Statement assume(Cube G);
  /// Builds `X := E`.
  static Statement assign(VarId X, LinearExpr E);
  /// Builds `havoc X`.
  static Statement havoc(VarId X);

  StmtKind kind() const { return Kind; }
  const Cube &guard() const { return Guard; }
  VarId target() const { return Target; }
  const LinearExpr &rhs() const { return Rhs; }

  /// Strongest postcondition on the cube domain (exact over the rationals,
  /// overapproximate over the integers -- sound for Hoare validity).
  /// \p Scratch must be a variable id unused by \p Pre and by the statement;
  /// it is used as the renamed pre-state copy of the assignment target.
  Cube post(const Cube &Pre, VarId Scratch) const;

  /// \returns true when the Hoare triple { Pre } this { Post } is valid.
  bool hoareValid(const Cube &Pre, const Cube &Post, VarId Scratch) const;

  /// \returns true if the statement reads or writes \p V.
  bool mentions(VarId V) const;

  /// \returns true if the statement writes \p V.
  bool writes(VarId V) const {
    return Kind != StmtKind::Assume && Target == V;
  }

  bool operator==(const Statement &O) const;
  bool operator!=(const Statement &O) const { return !(*this == O); }

  size_t hash() const;

  /// Rendering such as "j := j + 1" or "assume(i - 1 >= 0)".
  std::string str(const VarTable &Vars) const;

private:
  StmtKind Kind = StmtKind::Assume;
  Cube Guard;                 // Assume
  VarId Target = InvalidVar;  // Assign / Havoc
  LinearExpr Rhs;             // Assign
};

} // namespace termcheck

#endif // TERMCHECK_PROGRAM_STATEMENT_H
