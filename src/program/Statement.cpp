//===- program/Statement.cpp - Program statements ------------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/Statement.h"

#include <cassert>

using namespace termcheck;

Statement Statement::assume(Cube G) {
  Statement S;
  S.Kind = StmtKind::Assume;
  S.Guard = std::move(G);
  return S;
}

Statement Statement::assign(VarId X, LinearExpr E) {
  Statement S;
  S.Kind = StmtKind::Assign;
  S.Target = X;
  S.Rhs = std::move(E);
  return S;
}

Statement Statement::havoc(VarId X) {
  Statement S;
  S.Kind = StmtKind::Havoc;
  S.Target = X;
  return S;
}

Cube Statement::post(const Cube &Pre, VarId Scratch) const {
  switch (Kind) {
  case StmtKind::Assume: {
    Cube Out = Pre;
    Out.conjoin(Guard);
    return Out;
  }
  case StmtKind::Havoc:
    return fm::eliminate(Pre, Target);
  case StmtKind::Assign: {
    assert(!Pre.mentions(Scratch) && !Rhs.mentions(Scratch) &&
           Scratch != Target && "scratch variable is not fresh");
    // Rename the old value of Target to Scratch, assert the new value, and
    // project the old value away:
    //   sp(P, x := e) = exists x0. P[x->x0] /\ x == e[x->x0].
    LinearExpr X0 = LinearExpr::variable(Scratch);
    Cube Renamed = Pre.map([&](const Constraint &C) {
      return Constraint::make(C.expr().substitute(Target, X0), C.rel());
    });
    LinearExpr NewVal = Rhs.substitute(Target, X0);
    Renamed.add(Constraint::eq(LinearExpr::variable(Target), NewVal));
    return fm::eliminate(Renamed, Scratch);
  }
  }
  assert(false && "unknown statement kind");
  return Cube();
}

bool Statement::hoareValid(const Cube &Pre, const Cube &Post,
                           VarId Scratch) const {
  return fm::entails(post(Pre, Scratch), Post);
}

bool Statement::mentions(VarId V) const {
  switch (Kind) {
  case StmtKind::Assume:
    return Guard.mentions(V);
  case StmtKind::Havoc:
    return Target == V;
  case StmtKind::Assign:
    return Target == V || Rhs.mentions(V);
  }
  return false;
}

bool Statement::operator==(const Statement &O) const {
  if (Kind != O.Kind)
    return false;
  switch (Kind) {
  case StmtKind::Assume:
    return Guard == O.Guard;
  case StmtKind::Havoc:
    return Target == O.Target;
  case StmtKind::Assign:
    return Target == O.Target && Rhs == O.Rhs;
  }
  return false;
}

size_t Statement::hash() const {
  size_t H = static_cast<size_t>(Kind) * 0x9e3779b97f4a7c15ULL;
  switch (Kind) {
  case StmtKind::Assume:
    return H ^ Guard.hash();
  case StmtKind::Havoc:
    return H ^ Target;
  case StmtKind::Assign:
    return H ^ (Target * 0x100000001b3ULL) ^ Rhs.hash();
  }
  return H;
}

std::string Statement::str(const VarTable &Vars) const {
  switch (Kind) {
  case StmtKind::Assume:
    return "assume(" + Guard.str(Vars) + ")";
  case StmtKind::Havoc:
    return "havoc " + Vars.name(Target);
  case StmtKind::Assign:
    return Vars.name(Target) + " := " + Rhs.str(Vars);
  }
  return "<?>";
}
