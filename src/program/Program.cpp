//===- program/Program.cpp - Control-flow graphs -------------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"

using namespace termcheck;

SymbolId Program::internStatement(const Statement &S) {
  size_t H = S.hash();
  auto It = PoolIndex.find(H);
  if (It != PoolIndex.end())
    for (SymbolId Id : It->second)
      if (Pool[Id] == S)
        return Id;
  SymbolId Id = static_cast<SymbolId>(Pool.size());
  Pool.push_back(S);
  PoolIndex[H].push_back(Id);
  return Id;
}

std::vector<uint32_t> Program::outgoing(Location L) const {
  std::vector<uint32_t> Out;
  for (uint32_t I = 0; I < Edges.size(); ++I)
    if (Edges[I].From == L)
      Out.push_back(I);
  return Out;
}

std::string Program::str() const {
  std::string S = "program " + Name + " (entry l" + std::to_string(EntryLoc) +
                  ", " + std::to_string(NumLocations) + " locations)\n";
  for (const Edge &E : Edges) {
    S += "  l" + std::to_string(E.From) + " --[" +
         Pool[E.Sym].str(Vars) + "]--> l" + std::to_string(E.To) + "\n";
  }
  return S;
}
