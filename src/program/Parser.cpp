//===- program/Parser.cpp - WHILE-language front end ----------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/Parser.h"

#include <cassert>
#include <cctype>
#include <vector>

using namespace termcheck;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind : uint8_t {
  Ident,
  Int,
  KwProgram,
  KwWhile,
  KwIf,
  KwElse,
  KwHavoc,
  KwAssume,
  KwSkip,
  KwEither,
  KwOr,
  KwTrue,
  KwFalse,
  Assign,  // :=
  Plus,
  Minus,
  Star,
  LParen,
  RParen,
  LBrace,
  RBrace,
  Semi,
  Comma,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
  AndAnd,
  OrOr,
  Bang,
  Eof,
  Bad,
};

struct Token {
  TokKind Kind;
  std::string Text;
  int64_t IntVal = 0;
  int Line = 1;
  int Col = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  Token next() {
    skipTrivia();
    Token T;
    T.Line = Line;
    T.Col = col();
    if (Pos >= Src.size()) {
      T.Kind = TokKind::Eof;
      return T;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexWord();
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber();
    ++Pos;
    switch (C) {
    case '+': T.Kind = TokKind::Plus; return T;
    case '-': T.Kind = TokKind::Minus; return T;
    case '*': T.Kind = TokKind::Star; return T;
    case '(': T.Kind = TokKind::LParen; return T;
    case ')': T.Kind = TokKind::RParen; return T;
    case '{': T.Kind = TokKind::LBrace; return T;
    case '}': T.Kind = TokKind::RBrace; return T;
    case ';': T.Kind = TokKind::Semi; return T;
    case ',': T.Kind = TokKind::Comma; return T;
    case ':':
      if (eat('=')) {
        T.Kind = TokKind::Assign;
        return T;
      }
      break;
    case '<':
      T.Kind = eat('=') ? TokKind::Le : TokKind::Lt;
      return T;
    case '>':
      T.Kind = eat('=') ? TokKind::Ge : TokKind::Gt;
      return T;
    case '=':
      if (eat('=')) {
        T.Kind = TokKind::EqEq;
        return T;
      }
      break;
    case '!':
      T.Kind = eat('=') ? TokKind::Ne : TokKind::Bang;
      return T;
    case '&':
      if (eat('&')) {
        T.Kind = TokKind::AndAnd;
        return T;
      }
      break;
    case '|':
      if (eat('|')) {
        T.Kind = TokKind::OrOr;
        return T;
      }
      break;
    default:
      break;
    }
    T.Kind = TokKind::Bad;
    T.Text = std::string(1, C);
    return T;
  }

public:
  /// Checkpoint for parser backtracking.
  struct State {
    size_t Pos;
    int Line;
    size_t LineStart;
  };
  State save() const { return {Pos, Line, LineStart}; }
  void restore(State S) {
    Pos = S.Pos;
    Line = S.Line;
    LineStart = S.LineStart;
  }

private:
  bool eat(char C) {
    if (Pos < Src.size() && Src[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  Token lexWord() {
    Token T;
    T.Line = Line;
    T.Col = col();
    size_t Begin = Pos;
    while (Pos < Src.size() && (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
                                Src[Pos] == '_'))
      ++Pos;
    T.Text = Src.substr(Begin, Pos - Begin);
    if (T.Text == "program")
      T.Kind = TokKind::KwProgram;
    else if (T.Text == "while")
      T.Kind = TokKind::KwWhile;
    else if (T.Text == "if")
      T.Kind = TokKind::KwIf;
    else if (T.Text == "else")
      T.Kind = TokKind::KwElse;
    else if (T.Text == "havoc")
      T.Kind = TokKind::KwHavoc;
    else if (T.Text == "assume")
      T.Kind = TokKind::KwAssume;
    else if (T.Text == "skip")
      T.Kind = TokKind::KwSkip;
    else if (T.Text == "either")
      T.Kind = TokKind::KwEither;
    else if (T.Text == "or")
      T.Kind = TokKind::KwOr;
    else if (T.Text == "true")
      T.Kind = TokKind::KwTrue;
    else if (T.Text == "false")
      T.Kind = TokKind::KwFalse;
    else
      T.Kind = TokKind::Ident;
    return T;
  }

  Token lexNumber() {
    Token T;
    T.Line = Line;
    T.Col = col();
    T.Kind = TokKind::Int;
    int64_t V = 0;
    while (Pos < Src.size() && std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
      V = V * 10 + (Src[Pos] - '0');
      ++Pos;
    }
    T.IntVal = V;
    return T;
  }

  /// 1-based column of the current position (columns count bytes; tabs
  /// are one column, which is what most editors' goto-position expects).
  int col() const { return static_cast<int>(Pos - LineStart) + 1; }

  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  size_t LineStart = 0;
};

//===----------------------------------------------------------------------===//
// Condition AST (compiled to DNF at CFG-construction time)
//===----------------------------------------------------------------------===//

struct BoolExpr;
using BoolPtr = std::shared_ptr<BoolExpr>;

struct BoolExpr {
  enum class Kind : uint8_t { Cmp, And, Or, Not, True, False, Star } K;
  // Cmp payload.
  TokKind Op = TokKind::Bad;
  LinearExpr Lhs, Rhs;
  // And/Or/Not payload.
  BoolPtr A, B;

  static BoolPtr cmp(TokKind Op, LinearExpr L, LinearExpr R) {
    auto E = std::make_shared<BoolExpr>();
    E->K = Kind::Cmp;
    E->Op = Op;
    E->Lhs = std::move(L);
    E->Rhs = std::move(R);
    return E;
  }
  static BoolPtr binary(Kind K, BoolPtr A, BoolPtr B) {
    auto E = std::make_shared<BoolExpr>();
    E->K = K;
    E->A = std::move(A);
    E->B = std::move(B);
    return E;
  }
  static BoolPtr leaf(Kind K) {
    auto E = std::make_shared<BoolExpr>();
    E->K = K;
    return E;
  }
  static BoolPtr negate(BoolPtr A) {
    auto E = std::make_shared<BoolExpr>();
    E->K = Kind::Not;
    E->A = std::move(A);
    return E;
  }
};

/// A disjunct list; each cube is one assume-edge guard.
using Dnf = std::vector<Cube>;

Dnf toDnf(const BoolPtr &E, bool Negated);

Dnf dnfOfCmp(TokKind Op, const LinearExpr &L, const LinearExpr &R,
             bool Negated) {
  // Negation maps each comparison to its complement.
  TokKind Eff = Op;
  if (Negated) {
    switch (Op) {
    case TokKind::Lt: Eff = TokKind::Ge; break;
    case TokKind::Le: Eff = TokKind::Gt; break;
    case TokKind::Gt: Eff = TokKind::Le; break;
    case TokKind::Ge: Eff = TokKind::Lt; break;
    case TokKind::EqEq: Eff = TokKind::Ne; break;
    case TokKind::Ne: Eff = TokKind::EqEq; break;
    default: assert(false && "not a comparison");
    }
  }
  auto Single = [](Constraint C) {
    Cube Q;
    Q.add(C);
    return Dnf{Q};
  };
  switch (Eff) {
  case TokKind::Lt: return Single(Constraint::lt(L, R));
  case TokKind::Le: return Single(Constraint::le(L, R));
  case TokKind::Gt: return Single(Constraint::gt(L, R));
  case TokKind::Ge: return Single(Constraint::ge(L, R));
  case TokKind::EqEq: return Single(Constraint::eq(L, R));
  case TokKind::Ne: {
    // a != b becomes a < b or a > b.
    Cube Less, Greater;
    Less.add(Constraint::lt(L, R));
    Greater.add(Constraint::gt(L, R));
    return {Less, Greater};
  }
  default:
    assert(false && "not a comparison");
    return {};
  }
}

Dnf crossProduct(const Dnf &A, const Dnf &B) {
  Dnf Out;
  for (const Cube &CA : A) {
    for (const Cube &CB : B) {
      Cube C = CA;
      C.conjoin(CB);
      if (!C.isContradictory())
        Out.push_back(C);
    }
  }
  return Out;
}

Dnf toDnf(const BoolPtr &E, bool Negated) {
  switch (E->K) {
  case BoolExpr::Kind::Cmp:
    return dnfOfCmp(E->Op, E->Lhs, E->Rhs, Negated);
  case BoolExpr::Kind::Not:
    return toDnf(E->A, !Negated);
  case BoolExpr::Kind::And: {
    if (Negated) {
      Dnf Out = toDnf(E->A, true);
      for (Cube &C : toDnf(E->B, true))
        Out.push_back(std::move(C));
      return Out;
    }
    return crossProduct(toDnf(E->A, false), toDnf(E->B, false));
  }
  case BoolExpr::Kind::Or: {
    if (Negated)
      return crossProduct(toDnf(E->A, true), toDnf(E->B, true));
    Dnf Out = toDnf(E->A, false);
    for (Cube &C : toDnf(E->B, false))
      Out.push_back(std::move(C));
    return Out;
  }
  case BoolExpr::Kind::True:
    return Negated ? Dnf{} : Dnf{Cube()};
  case BoolExpr::Kind::False:
    return Negated ? Dnf{Cube()} : Dnf{};
  case BoolExpr::Kind::Star:
    // The nondeterministic condition: both it and its negation can fire.
    return Dnf{Cube()};
  }
  assert(false && "unknown bool expr");
  return {};
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  explicit Parser(const std::string &Src) : Lex(Src) { advance(); }

  ParseResult run() {
    ParseResult R;
    Program P = parseProgram();
    if (!Err.empty()) {
      R.Error = Err;
      R.Line = ErrLine;
      R.Col = ErrCol;
      return R;
    }
    R.Prog = std::move(P);
    return R;
  }

private:
  Lexer Lex;
  Token Tok;
  std::string Err;
  int ErrLine = 0;
  int ErrCol = 0;

  void advance() { Tok = Lex.next(); }

  /// Full parser checkpoint (lexer position, lookahead, diagnostics).
  struct Snapshot {
    Lexer::State LexState;
    Token Tok;
    std::string Err;
    int ErrLine;
    int ErrCol;
  };

  Snapshot snapshot() const { return {Lex.save(), Tok, Err, ErrLine, ErrCol}; }

  void rollback(const Snapshot &S) {
    Lex.restore(S.LexState);
    Tok = S.Tok;
    Err = S.Err;
    ErrLine = S.ErrLine;
    ErrCol = S.ErrCol;
  }

  static bool isComparison(TokKind K) {
    return K == TokKind::Lt || K == TokKind::Le || K == TokKind::Gt ||
           K == TokKind::Ge || K == TokKind::EqEq || K == TokKind::Ne;
  }

  bool failed() const { return !Err.empty(); }

  void error(const std::string &Msg) {
    if (Err.empty()) {
      Err = "line " + std::to_string(Tok.Line) + ", col " +
            std::to_string(Tok.Col) + ": " + Msg;
      ErrLine = Tok.Line;
      ErrCol = Tok.Col;
    }
  }

  bool expect(TokKind K, const char *What) {
    if (failed())
      return false;
    if (Tok.Kind != K) {
      error(std::string("expected ") + What);
      return false;
    }
    advance();
    return true;
  }

  Program parseProgram() {
    Program P;
    if (!expect(TokKind::KwProgram, "'program'"))
      return P;
    if (Tok.Kind != TokKind::Ident) {
      error("expected program name");
      return P;
    }
    P = Program(Tok.Text);
    advance();
    if (!expect(TokKind::LParen, "'('"))
      return P;
    if (Tok.Kind == TokKind::Ident) {
      P.addParam(P.vars().intern(Tok.Text));
      advance();
      while (Tok.Kind == TokKind::Comma) {
        advance();
        if (Tok.Kind != TokKind::Ident) {
          error("expected parameter name");
          return P;
        }
        P.addParam(P.vars().intern(Tok.Text));
        advance();
      }
    }
    if (!expect(TokKind::RParen, "')'"))
      return P;
    Location Entry = P.addLocation();
    P.setEntry(Entry);
    Location Exit = parseBlock(P, Entry);
    (void)Exit; // the exit location simply has no outgoing edges
    if (!failed() && Tok.Kind != TokKind::Eof)
      error("trailing input after program body");
    return P;
  }

  /// Parses a block starting at \p From; \returns the fall-through location.
  Location parseBlock(Program &P, Location From) {
    if (!expect(TokKind::LBrace, "'{'"))
      return From;
    Location Cur = From;
    while (!failed() && Tok.Kind != TokKind::RBrace && Tok.Kind != TokKind::Eof)
      Cur = parseStmt(P, Cur);
    expect(TokKind::RBrace, "'}'");
    return Cur;
  }

  Location parseStmt(Program &P, Location Cur) {
    switch (Tok.Kind) {
    case TokKind::Ident: {
      std::string Name = Tok.Text;
      advance();
      if (!expect(TokKind::Assign, "':='"))
        return Cur;
      LinearExpr E = parseExpr(P);
      if (!expect(TokKind::Semi, "';'"))
        return Cur;
      Location Next = P.addLocation();
      P.addEdge(Cur, Statement::assign(P.vars().intern(Name), E), Next);
      return Next;
    }
    case TokKind::KwHavoc: {
      advance();
      if (Tok.Kind != TokKind::Ident) {
        error("expected variable after 'havoc'");
        return Cur;
      }
      std::string Name = Tok.Text;
      advance();
      if (!expect(TokKind::Semi, "';'"))
        return Cur;
      Location Next = P.addLocation();
      P.addEdge(Cur, Statement::havoc(P.vars().intern(Name)), Next);
      return Next;
    }
    case TokKind::KwAssume: {
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return Cur;
      BoolPtr C = parseCond(P);
      if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Semi, "';'"))
        return Cur;
      Location Next = P.addLocation();
      emitGuardEdges(P, Cur, Next, toDnf(C, false));
      return Next;
    }
    case TokKind::KwSkip: {
      advance();
      expect(TokKind::Semi, "';'");
      return Cur;
    }
    case TokKind::KwWhile: {
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return Cur;
      BoolPtr C = parseCond(P);
      if (!expect(TokKind::RParen, "')'"))
        return Cur;
      Location BodyEntry = P.addLocation();
      Location After = P.addLocation();
      emitGuardEdges(P, Cur, BodyEntry, toDnf(C, false));
      emitGuardEdges(P, Cur, After, toDnf(C, true));
      Location BodyExit = parseBlock(P, BodyEntry);
      // Back edge: fuse the body's fall-through with the loop head.
      if (BodyExit != Cur)
        P.mergeLocationInto(BodyExit, Cur);
      return After;
    }
    case TokKind::KwIf: {
      advance();
      if (!expect(TokKind::LParen, "'('"))
        return Cur;
      BoolPtr C = parseCond(P);
      if (!expect(TokKind::RParen, "')'"))
        return Cur;
      Location ThenEntry = P.addLocation();
      emitGuardEdges(P, Cur, ThenEntry, toDnf(C, false));
      Location ThenExit = parseBlock(P, ThenEntry);
      Location After = P.addLocation();
      if (Tok.Kind == TokKind::KwElse) {
        advance();
        Location ElseEntry = P.addLocation();
        emitGuardEdges(P, Cur, ElseEntry, toDnf(C, true));
        Location ElseExit = parseBlock(P, ElseEntry);
        if (ElseExit != After)
          P.mergeLocationInto(ElseExit, After);
      } else {
        emitGuardEdges(P, Cur, After, toDnf(C, true));
      }
      if (ThenExit != After)
        P.mergeLocationInto(ThenExit, After);
      return After;
    }
    case TokKind::KwEither: {
      advance();
      Location After = P.addLocation();
      Location Entry1 = P.addLocation();
      P.addEdge(Cur, Statement::assume(Cube()), Entry1);
      Location Exit1 = parseBlock(P, Entry1);
      if (Exit1 != After)
        P.mergeLocationInto(Exit1, After);
      if (Tok.Kind != TokKind::KwOr) {
        error("'either' needs at least one 'or' branch");
        return Cur;
      }
      while (Tok.Kind == TokKind::KwOr) {
        advance();
        Location EntryN = P.addLocation();
        P.addEdge(Cur, Statement::assume(Cube()), EntryN);
        Location ExitN = parseBlock(P, EntryN);
        if (ExitN != After)
          P.mergeLocationInto(ExitN, After);
      }
      return After;
    }
    default:
      error("expected a statement");
      advance();
      return Cur;
    }
  }

  /// Adds one assume-edge per DNF disjunct. An empty DNF (condition `false`)
  /// adds no edge, making the target unreachable along this path.
  void emitGuardEdges(Program &P, Location From, Location To, const Dnf &D) {
    for (const Cube &C : D)
      P.addEdge(From, Statement::assume(C), To);
  }

  //===--------------------------------------------------------------------===//
  // Conditions
  //===--------------------------------------------------------------------===//

  BoolPtr parseCond(Program &P) { return parseOr(P); }

  BoolPtr parseOr(Program &P) {
    BoolPtr L = parseAnd(P);
    while (!failed() && Tok.Kind == TokKind::OrOr) {
      advance();
      L = BoolExpr::binary(BoolExpr::Kind::Or, L, parseAnd(P));
    }
    return L;
  }

  BoolPtr parseAnd(Program &P) {
    BoolPtr L = parseAtom(P);
    while (!failed() && Tok.Kind == TokKind::AndAnd) {
      advance();
      L = BoolExpr::binary(BoolExpr::Kind::And, L, parseAtom(P));
    }
    return L;
  }

  BoolPtr parseAtom(Program &P) {
    if (Tok.Kind == TokKind::Bang) {
      advance();
      return BoolExpr::negate(parseAtom(P));
    }
    if (Tok.Kind == TokKind::KwTrue) {
      advance();
      return BoolExpr::leaf(BoolExpr::Kind::True);
    }
    if (Tok.Kind == TokKind::KwFalse) {
      advance();
      return BoolExpr::leaf(BoolExpr::Kind::False);
    }
    if (Tok.Kind == TokKind::Star) {
      advance();
      return BoolExpr::leaf(BoolExpr::Kind::Star);
    }
    if (Tok.Kind == TokKind::LParen) {
      // Ambiguity: '(' starts either a parenthesized condition or a
      // parenthesized arithmetic subexpression of a comparison. Try the
      // comparison route first and backtrack to the condition route.
      Snapshot S = snapshot();
      LinearExpr L = parseExpr(P);
      if (!failed() && isComparison(Tok.Kind)) {
        TokKind Op = Tok.Kind;
        advance();
        LinearExpr R = parseExpr(P);
        return BoolExpr::cmp(Op, std::move(L), std::move(R));
      }
      rollback(S);
      advance(); // consume '('
      BoolPtr C = parseCond(P);
      expect(TokKind::RParen, "')'");
      return C;
    }
    LinearExpr L = parseExpr(P);
    TokKind Op = Tok.Kind;
    switch (Op) {
    case TokKind::Lt:
    case TokKind::Le:
    case TokKind::Gt:
    case TokKind::Ge:
    case TokKind::EqEq:
    case TokKind::Ne:
      advance();
      break;
    default:
      error("expected a comparison operator");
      return BoolExpr::leaf(BoolExpr::Kind::True);
    }
    LinearExpr R = parseExpr(P);
    return BoolExpr::cmp(Op, std::move(L), std::move(R));
  }

  //===--------------------------------------------------------------------===//
  // Linear expressions
  //===--------------------------------------------------------------------===//

  LinearExpr parseExpr(Program &P) {
    LinearExpr E = parseTerm(P);
    while (!failed() &&
           (Tok.Kind == TokKind::Plus || Tok.Kind == TokKind::Minus)) {
      bool Add = Tok.Kind == TokKind::Plus;
      advance();
      LinearExpr T = parseTerm(P);
      E = Add ? E + T : E - T;
    }
    return E;
  }

  LinearExpr parseTerm(Program &P) {
    LinearExpr F = parseFactor(P);
    while (!failed() && Tok.Kind == TokKind::Star) {
      advance();
      LinearExpr G = parseFactor(P);
      if (F.isConstant())
        F = G.scaledBy(F.constantTerm());
      else if (G.isConstant())
        F = F.scaledBy(G.constantTerm());
      else
        error("nonlinear multiplication is not supported");
    }
    return F;
  }

  LinearExpr parseFactor(Program &P) {
    if (Tok.Kind == TokKind::Minus) {
      advance();
      return -parseFactor(P);
    }
    if (Tok.Kind == TokKind::Int) {
      int64_t V = Tok.IntVal;
      advance();
      return LinearExpr::constant(V);
    }
    if (Tok.Kind == TokKind::Ident) {
      VarId V = P.vars().intern(Tok.Text);
      advance();
      return LinearExpr::variable(V);
    }
    if (Tok.Kind == TokKind::LParen) {
      advance();
      LinearExpr E = parseExpr(P);
      expect(TokKind::RParen, "')'");
      return E;
    }
    error("expected an arithmetic factor");
    return LinearExpr::constant(0);
  }
};

} // namespace

ParseResult termcheck::parseProgram(const std::string &Source) {
  return Parser(Source).run();
}
