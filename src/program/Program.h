//===- program/Program.h - Control-flow graphs ----------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A program is a control-flow graph whose edges are labeled with interned
/// statements, exactly the structure Figure 2 of the paper turns into the
/// Büchi automaton A_P: locations become states, the statement set becomes
/// the alphabet, and every infinite walk is a word. The statement pool
/// doubles as the alphabet-symbol table used by the automata layer (which
/// only sees dense uint32 symbols).
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_PROGRAM_PROGRAM_H
#define TERMCHECK_PROGRAM_PROGRAM_H

#include "program/Statement.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace termcheck {

/// Index of a CFG location.
using Location = uint32_t;

/// Index of an interned statement (an alphabet symbol).
using SymbolId = uint32_t;

/// A control-flow graph over linear-arithmetic statements.
class Program {
public:
  /// One labeled CFG edge.
  struct Edge {
    Location From;
    SymbolId Sym;
    Location To;
  };

  explicit Program(std::string Name = "main") : Name(std::move(Name)) {
    // Reserve the auxiliary variables up front so user variables can never
    // collide with them ('$' is not a legal identifier character).
    Scratch = Vars.intern("$scratch");
    Oldrnk = Vars.intern("oldrnk");
  }

  const std::string &name() const { return Name; }

  VarTable &vars() { return Vars; }
  const VarTable &vars() const { return Vars; }

  /// The reserved fresh variable for postcondition computation.
  VarId scratchVar() const { return Scratch; }
  /// The reserved `oldrnk` auxiliary variable of Definition 3.1.
  VarId oldrnkVar() const { return Oldrnk; }

  /// Declares an input parameter (used by the interpreter and examples).
  void addParam(VarId V) { Params.push_back(V); }
  const std::vector<VarId> &params() const { return Params; }

  /// Creates a fresh location.
  Location addLocation() { return NumLocations++; }
  uint32_t numLocations() const { return NumLocations; }

  Location entry() const { return EntryLoc; }
  void setEntry(Location L) { EntryLoc = L; }

  /// Interns \p S, returning its stable symbol id.
  SymbolId internStatement(const Statement &S);

  /// Adds the edge `From --S--> To`, interning the statement.
  void addEdge(Location From, const Statement &S, Location To) {
    Edges.push_back({From, internStatement(S), To});
  }

  const std::vector<Edge> &edges() const { return Edges; }

  /// Redirects every edge endpoint at \p From to \p Into (used by the
  /// parser to fuse fall-through locations with join points instead of
  /// emitting no-op `assume(true)` edges, keeping the CFG as small as the
  /// paper's Figure 2b).
  void mergeLocationInto(Location From, Location Into) {
    for (Edge &E : Edges) {
      if (E.From == From)
        E.From = Into;
      if (E.To == From)
        E.To = Into;
    }
    if (EntryLoc == From)
      EntryLoc = Into;
  }

  /// \returns the statement behind symbol \p Sym.
  const Statement &statement(SymbolId Sym) const { return Pool[Sym]; }

  /// Number of distinct statements (the alphabet size of A_P).
  uint32_t numSymbols() const { return static_cast<uint32_t>(Pool.size()); }

  /// \returns the outgoing edges of \p L (index list into edges()).
  std::vector<uint32_t> outgoing(Location L) const;

  /// Multi-line dump of the CFG for debugging and examples.
  std::string str() const;

private:
  std::string Name;
  VarTable Vars;
  VarId Scratch = InvalidVar;
  VarId Oldrnk = InvalidVar;
  std::vector<VarId> Params;
  uint32_t NumLocations = 0;
  Location EntryLoc = 0;
  std::vector<Statement> Pool;
  std::unordered_map<size_t, std::vector<SymbolId>> PoolIndex;
  std::vector<Edge> Edges;
};

} // namespace termcheck

#endif // TERMCHECK_PROGRAM_PROGRAM_H
