//===- program/Interpreter.h - Concrete CFG execution ---------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fuel-bounded concrete interpreter for CFG programs. Nondeterminism
/// (havoc values, choice among enabled edges) is resolved by a seeded RNG,
/// so runs are reproducible. The test suites use it to differentially check
/// the analyzer: a TERMINATING verdict must never be contradicted by an
/// exhausted-fuel run far above the program's known bound, and a concretely
/// nonterminating family must never be claimed terminating.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_PROGRAM_INTERPRETER_H
#define TERMCHECK_PROGRAM_INTERPRETER_H

#include "program/Program.h"
#include "support/Rng.h"

#include <map>

namespace termcheck {

/// How a bounded run ended.
enum class RunStatus : uint8_t {
  Exited,       ///< reached a location with no enabled edge
  OutOfFuel,    ///< executed the full fuel budget
};

/// Result of one interpreted run.
struct RunResult {
  RunStatus Status;
  uint64_t Steps;                ///< statements executed
  std::map<VarId, int64_t> Final; ///< final valuation
};

/// Result of driving one fixed statement path (Interpreter::runPath).
struct PathRunResult {
  /// True when every statement of the path executed: all assume guards
  /// held and the havoc script (when given) covered every havoc.
  bool Completed = false;
  /// Index of the first statement that could not execute (when !Completed).
  size_t BlockedAt = 0;
  /// Valuation after the last executed statement.
  std::map<VarId, int64_t> Final;
  /// The value drawn for each havoc, in execution order.
  std::vector<int64_t> Havocs;
};

/// Executes programs concretely with bounded fuel.
class Interpreter {
public:
  /// \p HavocLo / \p HavocHi bound the values drawn for havoc statements.
  Interpreter(const Program &P, uint64_t Seed = 1,
              int64_t HavocLo = -16, int64_t HavocHi = 16)
      : P(P), R(Seed), HavocLo(HavocLo), HavocHi(HavocHi) {}

  /// Runs from the entry location with the given initial valuation
  /// (unlisted variables start at zero) for at most \p Fuel statements.
  RunResult run(const std::map<VarId, int64_t> &Initial, uint64_t Fuel);

  /// Executes the exact statement sequence \p Path from \p Initial,
  /// ignoring the CFG structure. This is the replay primitive of the
  /// nontermination machinery: drive a sampled lasso's stem and loop
  /// concretely and look for a revisited state. Havoc values come from
  /// \p Script when provided (execution blocks when the script runs dry,
  /// making replays exact), otherwise from the interpreter's RNG.
  PathRunResult runPath(const std::vector<SymbolId> &Path,
                        const std::map<VarId, int64_t> &Initial,
                        const std::vector<int64_t> *Script = nullptr);

private:
  const Program &P;
  Rng R;
  int64_t HavocLo, HavocHi;
};

} // namespace termcheck

#endif // TERMCHECK_PROGRAM_INTERPRETER_H
