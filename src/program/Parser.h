//===- program/Parser.h - WHILE-language front end ------------*- C++ -*-===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the small WHILE language used by the
/// examples and benchmark programs. Grammar (informal):
///
///   program  := 'program' IDENT '(' [IDENT (',' IDENT)*] ')' block
///   block    := '{' stmt* '}'
///   stmt     := IDENT ':=' expr ';'
///             | 'havoc' IDENT ';'
///             | 'assume' '(' cond ')' ';'
///             | 'skip' ';'
///             | 'while' '(' cond ')' block
///             | 'if' '(' cond ')' block ['else' block]
///             | 'either' block ('or' block)+
///   cond     := orc ;  orc := andc ('||' andc)* ;  andc := atom ('&&' atom)*
///   atom     := expr ('<'|'<='|'>'|'>='|'=='|'!=') expr
///             | '!' atom | '(' cond ')' | 'true' | 'false' | '*'
///   expr     := linear integer arithmetic over IDENTs (+, -, constant *)
///
/// Conditions are compiled to DNF; each disjunct becomes one `assume` edge,
/// so branching control flow surfaces as automaton nondeterminism exactly
/// as in Figure 2 of the paper. The token '*' is the nondeterministic
/// condition.
///
//===----------------------------------------------------------------------===//

#ifndef TERMCHECK_PROGRAM_PARSER_H
#define TERMCHECK_PROGRAM_PARSER_H

#include "program/Program.h"

#include <memory>
#include <optional>
#include <string>

namespace termcheck {

/// Outcome of parsing: a program, or a diagnostic.
struct ParseResult {
  std::optional<Program> Prog;
  std::string Error; // empty on success; "line N, col M: message" otherwise
  /// Structured source position of the diagnostic (1-based; 0 when the
  /// error has no position). Lets front ends render `path:line:col:`
  /// without re-parsing the message.
  int Line = 0;
  int Col = 0;

  bool ok() const { return Prog.has_value(); }
};

/// Parses WHILE-language \p Source into a CFG.
ParseResult parseProgram(const std::string &Source);

} // namespace termcheck

#endif // TERMCHECK_PROGRAM_PARSER_H
