//===- program/Interpreter.cpp - Concrete CFG execution ------------------===//
//
// Part of the termcheck project (PLDI'18 reproduction).
//
//===----------------------------------------------------------------------===//

#include "program/Interpreter.h"

#include <cassert>

using namespace termcheck;

RunResult Interpreter::run(const std::map<VarId, int64_t> &Initial,
                           uint64_t Fuel) {
  std::map<VarId, int64_t> Vals = Initial;
  auto ValueOf = [&](VarId V) -> int64_t {
    auto It = Vals.find(V);
    return It == Vals.end() ? 0 : It->second;
  };

  // Index outgoing edges once.
  std::vector<std::vector<const Program::Edge *>> Out(P.numLocations());
  for (const Program::Edge &E : P.edges())
    Out[E.From].push_back(&E);

  Location Loc = P.entry();
  uint64_t Steps = 0;
  while (Steps < Fuel) {
    // Collect the enabled edges at the current location.
    std::vector<const Program::Edge *> Enabled;
    for (const Program::Edge *E : Out[Loc]) {
      const Statement &S = P.statement(E->Sym);
      if (S.kind() == StmtKind::Assume && !S.guard().holds(ValueOf))
        continue;
      Enabled.push_back(E);
    }
    if (Enabled.empty())
      return {RunStatus::Exited, Steps, Vals};

    const Program::Edge *E = Enabled[R.below(Enabled.size())];
    const Statement &S = P.statement(E->Sym);
    switch (S.kind()) {
    case StmtKind::Assume:
      break; // guard already checked
    case StmtKind::Assign:
      Vals[S.target()] = S.rhs().evaluate(ValueOf);
      break;
    case StmtKind::Havoc:
      Vals[S.target()] = R.range(HavocLo, HavocHi);
      break;
    }
    Loc = E->To;
    ++Steps;
  }
  return {RunStatus::OutOfFuel, Steps, Vals};
}

PathRunResult Interpreter::runPath(const std::vector<SymbolId> &Path,
                                   const std::map<VarId, int64_t> &Initial,
                                   const std::vector<int64_t> *Script) {
  PathRunResult Out;
  Out.Final = Initial;
  auto ValueOf = [&](VarId V) -> int64_t {
    auto It = Out.Final.find(V);
    return It == Out.Final.end() ? 0 : It->second;
  };

  for (size_t I = 0; I < Path.size(); ++I) {
    const Statement &S = P.statement(Path[I]);
    switch (S.kind()) {
    case StmtKind::Assume:
      if (!S.guard().holds(ValueOf)) {
        Out.BlockedAt = I;
        return Out;
      }
      break;
    case StmtKind::Assign:
      Out.Final[S.target()] = S.rhs().evaluate(ValueOf);
      break;
    case StmtKind::Havoc: {
      int64_t V;
      if (Script) {
        if (Out.Havocs.size() >= Script->size()) {
          Out.BlockedAt = I; // script ran dry
          return Out;
        }
        V = (*Script)[Out.Havocs.size()];
      } else {
        V = R.range(HavocLo, HavocHi);
      }
      Out.Havocs.push_back(V);
      Out.Final[S.target()] = V;
      break;
    }
    }
  }
  Out.Completed = true;
  return Out;
}
